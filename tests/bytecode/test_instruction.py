"""Tests for Instruction construction, classification and rewriting helpers."""

import pytest

from repro.bytecode.base import BaseArray
from repro.bytecode.instruction import Instruction
from repro.bytecode.opcodes import OpCode
from repro.bytecode.operand import Constant
from repro.bytecode.view import View


@pytest.fixture
def vector_view():
    return View.full(BaseArray(8, name="v"))


class TestConstruction:
    def test_scalars_coerced_to_constants(self, vector_view):
        instruction = Instruction(OpCode.BH_ADD, (vector_view, vector_view, 1))
        assert instruction.constant == Constant(1)

    def test_opcode_type_checked(self, vector_view):
        with pytest.raises(TypeError):
            Instruction("BH_ADD", (vector_view, vector_view, 1))

    def test_kernel_only_for_fused(self, vector_view):
        inner = Instruction(OpCode.BH_ADD, (vector_view, vector_view, 1))
        with pytest.raises(ValueError):
            Instruction(OpCode.BH_ADD, (vector_view, vector_view, 1), kernel=[inner])
        fused = Instruction(OpCode.BH_FUSED, (), kernel=[inner])
        assert fused.kernel == (inner,)


class TestAccessors:
    def test_out_and_inputs(self, vector_view):
        other = View.full(BaseArray(8))
        instruction = Instruction(OpCode.BH_ADD, (vector_view, other, 2))
        assert instruction.out is vector_view
        assert instruction.inputs == (other, Constant(2))
        assert instruction.input_views == (other,)
        assert instruction.constants == (Constant(2),)

    def test_constant_none_when_multiple(self, vector_view):
        instruction = Instruction(OpCode.BH_ADD, (vector_view, 1, 2))
        assert instruction.constant is None

    def test_system_instruction_has_no_inputs(self, vector_view):
        sync = Instruction(OpCode.BH_SYNC, (vector_view,))
        assert sync.out is vector_view
        assert sync.inputs == ()

    def test_reads_and_writes_elementwise(self, vector_view):
        source = View.full(BaseArray(8))
        instruction = Instruction(OpCode.BH_MULTIPLY, (vector_view, source, vector_view))
        assert set(instruction.reads()) == {source, vector_view}
        assert instruction.writes() == (vector_view,)

    def test_free_writes_nothing(self, vector_view):
        free = Instruction(OpCode.BH_FREE, (vector_view,))
        assert free.writes() == ()

    def test_sync_reads_its_operand(self, vector_view):
        sync = Instruction(OpCode.BH_SYNC, (vector_view,))
        assert sync.reads() == (vector_view,)

    def test_fused_reads_writes_come_from_payload(self, vector_view):
        source = View.full(BaseArray(8))
        inner = Instruction(OpCode.BH_ADD, (vector_view, source, 1))
        fused = Instruction(OpCode.BH_FUSED, (), kernel=[inner])
        assert fused.reads() == (source,)
        assert fused.writes() == (vector_view,)


class TestClassification:
    def test_elementwise(self, vector_view):
        assert Instruction(OpCode.BH_ADD, (vector_view, vector_view, 1)).is_elementwise()
        assert not Instruction(OpCode.BH_SYNC, (vector_view,)).is_elementwise()

    def test_reduction(self, vector_view):
        out = View.full(BaseArray(1))
        reduce_instr = Instruction(OpCode.BH_ADD_REDUCE, (out, vector_view, 0))
        assert reduce_instr.is_reduction()

    def test_system(self, vector_view):
        assert Instruction(OpCode.BH_FREE, (vector_view,)).is_system()
        assert Instruction(OpCode.BH_NONE, ()).is_system()

    def test_extension(self):
        matrix = View.full(BaseArray(4), (2, 2))
        out = View.full(BaseArray(4), (2, 2))
        assert Instruction(OpCode.BH_MATRIX_INVERSE, (out, matrix)).is_extension()


class TestRewriteHelpers:
    def test_replace_keeps_unspecified_fields(self, vector_view):
        original = Instruction(OpCode.BH_ADD, (vector_view, vector_view, 1), tag="orig")
        replaced = original.replace(opcode=OpCode.BH_MULTIPLY)
        assert replaced.opcode is OpCode.BH_MULTIPLY
        assert replaced.operands == original.operands
        assert replaced.tag == "orig"

    def test_with_constant(self, vector_view):
        original = Instruction(OpCode.BH_ADD, (vector_view, vector_view, 1))
        updated = original.with_constant(5)
        assert updated.constant == Constant(5)
        assert updated.out is vector_view

    def test_with_constant_requires_single_constant(self, vector_view):
        with pytest.raises(ValueError):
            Instruction(OpCode.BH_ADD, (vector_view, vector_view, vector_view)).with_constant(5)

    def test_equality_and_hash(self, vector_view):
        first = Instruction(OpCode.BH_ADD, (vector_view, vector_view, 1))
        second = Instruction(OpCode.BH_ADD, (vector_view, vector_view, 1))
        assert first == second
        assert len({first, second}) == 1
