"""Tests for the textual byte-code format (printer and parser)."""

import pytest

from repro.bytecode.base import BaseArray
from repro.bytecode.builder import ProgramBuilder
from repro.bytecode.opcodes import OpCode
from repro.bytecode.operand import Constant
from repro.bytecode.parser import parse_instruction, parse_program
from repro.bytecode.printer import format_instruction, format_program, format_view
from repro.bytecode.view import View
from repro.utils.errors import ParseError

LISTING_2 = """
BH_IDENTITY a0[0:10:1] 0
BH_ADD a0[0:10:1] a0[0:10:1] 1
BH_ADD a0[0:10:1] a0[0:10:1] 1
BH_ADD a0[0:10:1] a0[0:10:1] 1
BH_SYNC a0[0:10:1]
"""

LISTING_5 = """
BH_MULTIPLY a1 a0 a0
BH_MULTIPLY a1 a1 a1
BH_MULTIPLY a1 a1 a1
BH_MULTIPLY a1 a1 a0
BH_MULTIPLY a1 a1 a0
BH_SYNC a1
"""


class TestPrinter:
    def test_slice_view_format_matches_paper(self):
        base = BaseArray(10, name="a0")
        assert format_view(View.from_slice(base, 0, 10, 1)) == "a0[0:10:1]"

    def test_strided_view_format(self):
        base = BaseArray(10, name="a0")
        view = View(base, 1, (4,), (2,))
        assert format_view(view) == "a0[1:9:2]"

    def test_matrix_view_format(self):
        base = BaseArray(12, name="m")
        assert format_view(View.full(base, (3, 4))) == "m[0;3,4;4,1]"

    def test_instruction_format(self):
        base = BaseArray(10, name="a0")
        view = View.full(base)
        instr_text = format_instruction(
            __import__("repro.bytecode.instruction", fromlist=["Instruction"]).Instruction(
                OpCode.BH_ADD, (view, view, 1)
            )
        )
        assert instr_text == "BH_ADD a0[0:10:1] a0[0:10:1] 1"

    def test_abbreviated_register_only_format(self):
        base = BaseArray(10, name="a0")
        view = View.full(base)
        from repro.bytecode.instruction import Instruction

        text = format_instruction(Instruction(OpCode.BH_ADD, (view, view, 1)), include_views=False)
        assert text == "BH_ADD a0 a0 1"

    def test_constant_formats(self):
        from repro.bytecode.instruction import Instruction

        base = BaseArray(2, name="b")
        view = View.full(base)
        assert format_instruction(Instruction(OpCode.BH_ADD, (view, view, 1.5))).endswith("1.5")
        assert format_instruction(Instruction(OpCode.BH_IDENTITY, (view, True))).endswith("true")


class TestParser:
    def test_parse_listing_2(self):
        program = parse_program(LISTING_2)
        assert len(program) == 5
        assert program[0].opcode is OpCode.BH_IDENTITY
        assert [i.opcode for i in program[1:4]] == [OpCode.BH_ADD] * 3
        assert program[1].constant == Constant(1)
        # every view refers to the same register
        bases = {view.base for instr in program for view in instr.views()}
        assert len(bases) == 1

    def test_parse_listing_5_bare_registers(self):
        program = parse_program(LISTING_5, default_nelem=8)
        assert len(program) == 6
        assert program.count(OpCode.BH_MULTIPLY) == 5
        registers = {base.name for base in program.bases()}
        assert registers == {"a0", "a1"}

    def test_register_size_inferred_from_views(self):
        program = parse_program("BH_ADD a0[0:32:1] a0[0:32:1] 2")
        assert program.bases()[0].nelem == 32

    def test_comments_and_blank_lines_ignored(self):
        text = "# header comment\n\nBH_ADD a0[0:4:1] a0[0:4:1] 1  # trailing\n"
        assert len(parse_program(text)) == 1

    def test_round_trip(self):
        builder = ProgramBuilder()
        a0 = builder.new_vector(10)
        builder.identity(a0, 0)
        builder.add(a0, a0, 1)
        builder.sync(a0)
        original = builder.build()
        text = format_program(original)
        reparsed = parse_program(text)
        assert format_program(reparsed) == text

    def test_general_view_round_trip(self):
        base = BaseArray(12, name="m")
        view = View.full(base, (3, 4))
        from repro.bytecode.instruction import Instruction

        text = format_instruction(Instruction(OpCode.BH_IDENTITY, (view, 0)))
        parsed = parse_instruction(text)
        assert parsed.out.shape == (3, 4)
        assert parsed.out.strides == (4, 1)

    def test_unknown_opcode_raises(self):
        with pytest.raises(ParseError):
            parse_program("BH_FROBNICATE a0[0:4:1] 1")

    def test_error_reports_line_number(self):
        with pytest.raises(ParseError, match="line 2"):
            parse_program("BH_SYNC a0[0:4:1]\nBH_NOT_AN_OP a0[0:4:1]")

    def test_parse_instruction_shares_registers(self):
        registers = {}
        first = parse_instruction("BH_IDENTITY a0[0:4:1] 0", registers=registers)
        second = parse_instruction("BH_ADD a0[0:4:1] a0[0:4:1] 1", registers=registers)
        assert first.out.base is second.out.base

    def test_float_and_negative_constants(self):
        program = parse_program("BH_ADD a0[0:4:1] a0[0:4:1] -2\nBH_MULTIPLY a0[0:4:1] a0[0:4:1] 0.5")
        assert program[0].constant == Constant(-2)
        assert program[1].constant == Constant(0.5)
