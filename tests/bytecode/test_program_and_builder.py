"""Tests for Program container behaviour and ProgramBuilder."""

import pytest

from repro.bytecode.base import BaseArray
from repro.bytecode.builder import ProgramBuilder
from repro.bytecode.dtypes import int64
from repro.bytecode.instruction import Instruction
from repro.bytecode.opcodes import OpCode
from repro.bytecode.program import Program
from repro.bytecode.view import View
from repro.utils.errors import ValidationError


def listing2_program():
    """The paper's Listing 2: init, three adds, sync."""
    builder = ProgramBuilder()
    a0 = builder.new_vector(10)
    builder.identity(a0, 0)
    builder.add(a0, a0, 1)
    builder.add(a0, a0, 1)
    builder.add(a0, a0, 1)
    builder.sync(a0)
    return builder.build(), a0


class TestProgramContainer:
    def test_len_and_iteration(self):
        program, _ = listing2_program()
        assert len(program) == 5
        assert all(isinstance(instr, Instruction) for instr in program)

    def test_indexing_and_slicing(self):
        program, _ = listing2_program()
        assert program[0].opcode is OpCode.BH_IDENTITY
        window = program[1:4]
        assert isinstance(window, Program)
        assert len(window) == 3

    def test_equality(self):
        first, _ = listing2_program()
        assert first == first.copy()

    def test_append_type_checked(self):
        program = Program()
        with pytest.raises(TypeError):
            program.append("not an instruction")

    def test_opcode_histogram(self):
        program, _ = listing2_program()
        histogram = program.opcode_histogram()
        assert histogram[OpCode.BH_ADD] == 3
        assert histogram[OpCode.BH_IDENTITY] == 1
        assert histogram[OpCode.BH_SYNC] == 1

    def test_count_includes_fused_payload(self):
        program, a0 = listing2_program()
        inner = list(program[1:4])
        fused = Instruction(OpCode.BH_FUSED, (), kernel=inner)
        wrapped = Program([program[0], fused, program[4]])
        assert wrapped.count(OpCode.BH_ADD) == 3
        assert wrapped.count(OpCode.BH_ADD, include_fused=False) == 0

    def test_num_operations_excludes_system(self):
        program, _ = listing2_program()
        assert program.num_operations() == 4  # identity + three adds

    def test_element_traversals(self):
        program, _ = listing2_program()
        # identity touches 10 (out) elements; each add touches two views of 10.
        assert program.element_traversals() == 10 + 3 * 20

    def test_bases_in_first_use_order(self):
        builder = ProgramBuilder()
        first = builder.new_vector(4)
        second = builder.new_vector(4)
        builder.identity(second, 1)
        builder.identity(first, 2)
        program = builder.build()
        assert program.bases() == (second.base, first.base)

    def test_synced_views(self):
        program, a0 = listing2_program()
        assert program.synced_views() == (a0,)

    def test_without_system(self):
        program, _ = listing2_program()
        assert len(program.without_system()) == 4

    def test_flattened_expands_fused(self):
        program, _ = listing2_program()
        inner = list(program[1:4])
        fused = Instruction(OpCode.BH_FUSED, (), kernel=inner)
        wrapped = Program([program[0], fused, program[4]])
        assert len(wrapped.flattened()) == 5

    def test_to_text_round_trip_header(self):
        program, _ = listing2_program()
        text = program.to_text()
        assert text.splitlines()[0].startswith("BH_IDENTITY")


class TestProgramBuilder:
    def test_register_names_are_sequential(self):
        builder = ProgramBuilder()
        first = builder.new_vector(4)
        second = builder.new_vector(4)
        assert first.base.name == "a0"
        assert second.base.name == "a1"

    def test_new_matrix_shape(self):
        builder = ProgramBuilder()
        matrix = builder.new_matrix(3, 4)
        assert matrix.shape == (3, 4)
        assert matrix.base.nelem == 12

    def test_new_like_copies_shape_and_dtype(self):
        builder = ProgramBuilder(int64)
        matrix = builder.new_matrix(2, 2)
        like = builder.new_like(matrix)
        assert like.shape == (2, 2)
        assert like.dtype is int64
        assert like.base is not matrix.base

    def test_build_validates_by_default(self):
        builder = ProgramBuilder()
        out = builder.new_vector(4)
        other = builder.new_vector(5)
        builder.add(out, out, other)  # incompatible shapes (4 vs 5)
        with pytest.raises(ValidationError):
            builder.build()
        # but an unvalidated build hands back the raw program
        assert len(builder.build(validate=False)) == 1

    def test_emit_binary_returns_output_view(self):
        builder = ProgramBuilder()
        out = builder.new_vector(4)
        returned = builder.add(out, out, 1)
        assert returned is out

    def test_reduction_helpers(self):
        builder = ProgramBuilder()
        matrix = builder.new_matrix(3, 4)
        rows = builder.new_vector(4)
        builder.add_reduce(rows, matrix, axis=0)
        program = builder.build()
        assert program[0].opcode is OpCode.BH_ADD_REDUCE
        assert int(program[0].constants[0].value) == 0

    def test_extension_helpers(self):
        builder = ProgramBuilder()
        a = builder.new_matrix(3, 3)
        b = builder.new_vector(3)
        x = builder.new_vector(3)
        builder.lu_solve(x, a, b)
        program = builder.build()
        assert program[0].opcode is OpCode.BH_LU_SOLVE

    def test_random_and_range(self):
        builder = ProgramBuilder()
        v = builder.new_vector(8)
        builder.random(v, seed=42)
        builder.arange(v)
        program = builder.build()
        assert program[0].opcode is OpCode.BH_RANDOM
        assert program[1].opcode is OpCode.BH_RANGE
