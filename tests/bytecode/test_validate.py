"""Tests for static program validation."""

import pytest

from repro.bytecode.base import BaseArray
from repro.bytecode.instruction import Instruction
from repro.bytecode.opcodes import OpCode
from repro.bytecode.program import Program
from repro.bytecode.validate import broadcast_shapes, validate_instruction, validate_program
from repro.bytecode.view import View
from repro.utils.errors import ValidationError


def vec(n, name=None):
    return View.full(BaseArray(n, name=name))


class TestBroadcastShapes:
    def test_equal_shapes(self):
        assert broadcast_shapes((3, 4), (3, 4)) == (3, 4)

    def test_scalar_like(self):
        assert broadcast_shapes((3, 4), ()) == (3, 4)

    def test_ones_broadcast(self):
        assert broadcast_shapes((3, 1), (1, 4)) == (3, 4)

    def test_incompatible(self):
        with pytest.raises(ValidationError):
            broadcast_shapes((3,), (4,))

    def test_zero_dim_stretches_the_one_side(self):
        # NumPy semantics: 1 broadcasts *to* 0, so the result is empty —
        # a naive max() would silently grow the empty side to 1 element.
        assert broadcast_shapes((0,), (1,)) == (0,)
        assert broadcast_shapes((1,), (0,)) == (0,)
        assert broadcast_shapes((3, 0), (3, 1)) == (3, 0)

    def test_equal_zero_dims(self):
        assert broadcast_shapes((0,), (0,)) == (0,)

    def test_zero_against_other_size_rejected(self):
        with pytest.raises(ValidationError, match="not broadcast-compatible"):
            broadcast_shapes((0,), (3,))

    def test_negative_dims_rejected(self):
        with pytest.raises(ValidationError, match="negative"):
            broadcast_shapes((-1,), (4,))
        with pytest.raises(ValidationError, match="negative"):
            broadcast_shapes((4,), (2, -3))


class TestInstructionValidation:
    def test_valid_elementwise(self):
        out = vec(8)
        validate_instruction(Instruction(OpCode.BH_ADD, (out, out, 1)))

    def test_output_must_be_view(self):
        with pytest.raises(ValidationError):
            validate_instruction(Instruction(OpCode.BH_ADD, (1, vec(4), 1)))

    def test_wrong_arity(self):
        out = vec(4)
        with pytest.raises(ValidationError):
            validate_instruction(Instruction(OpCode.BH_ADD, (out, out)))
        with pytest.raises(ValidationError):
            validate_instruction(Instruction(OpCode.BH_NEGATIVE, (out, out, out)))

    def test_shape_mismatch(self):
        with pytest.raises(ValidationError):
            validate_instruction(Instruction(OpCode.BH_ADD, (vec(4), vec(5), 1)))

    def test_broadcast_to_larger_output_than_out_rejected(self):
        small = vec(1)
        large = vec(6)
        with pytest.raises(ValidationError):
            validate_instruction(Instruction(OpCode.BH_ADD, (small, large, 1)))

    def test_reduction_axis_must_be_integer_constant(self):
        matrix = View.full(BaseArray(12), (3, 4))
        out = vec(4)
        validate_instruction(Instruction(OpCode.BH_ADD_REDUCE, (out, matrix, 0)))
        with pytest.raises(ValidationError):
            validate_instruction(Instruction(OpCode.BH_ADD_REDUCE, (out, matrix, 0.5)))

    def test_reduction_axis_out_of_range(self):
        matrix = View.full(BaseArray(12), (3, 4))
        out = vec(4)
        with pytest.raises(ValidationError):
            validate_instruction(Instruction(OpCode.BH_ADD_REDUCE, (out, matrix, 2)))

    def test_reduction_output_shape_checked(self):
        matrix = View.full(BaseArray(12), (3, 4))
        wrong = vec(3)
        with pytest.raises(ValidationError):
            validate_instruction(Instruction(OpCode.BH_ADD_REDUCE, (wrong, matrix, 0)))

    def test_full_reduction_to_single_element(self):
        source = vec(6)
        out = vec(1)
        validate_instruction(Instruction(OpCode.BH_ADD_REDUCE, (out, source, 0)))

    def test_matmul_shapes(self):
        a = View.full(BaseArray(6), (2, 3))
        b = View.full(BaseArray(3), (3,))
        out = vec(2)
        validate_instruction(Instruction(OpCode.BH_MATMUL, (out, a, b)))
        bad_b = vec(4)
        with pytest.raises(ValidationError):
            validate_instruction(Instruction(OpCode.BH_MATMUL, (out, a, bad_b)))

    def test_matrix_inverse_requires_square(self):
        rect = View.full(BaseArray(6), (2, 3))
        out = View.full(BaseArray(6), (2, 3))
        with pytest.raises(ValidationError):
            validate_instruction(Instruction(OpCode.BH_MATRIX_INVERSE, (out, rect)))

    def test_lu_solve_shapes(self):
        a = View.full(BaseArray(9), (3, 3))
        b = vec(3)
        x = vec(3)
        validate_instruction(Instruction(OpCode.BH_LU_SOLVE, (x, a, b)))
        with pytest.raises(ValidationError):
            validate_instruction(Instruction(OpCode.BH_LU_SOLVE, (x, a, vec(4))))

    def test_random_requires_seed(self):
        out = vec(4)
        validate_instruction(Instruction(OpCode.BH_RANDOM, (out, 7)))

    def test_fused_requires_payload(self):
        with pytest.raises(ValidationError):
            validate_instruction(Instruction(OpCode.BH_FUSED, ()))

    def test_fused_payload_must_be_elementwise(self):
        out = vec(4)
        reduction = Instruction(OpCode.BH_ADD_REDUCE, (vec(1), out, 0))
        with pytest.raises(ValidationError):
            validate_instruction(Instruction(OpCode.BH_FUSED, (), kernel=[reduction]))

    def test_system_arity(self):
        out = vec(4)
        validate_instruction(Instruction(OpCode.BH_SYNC, (out,)))
        with pytest.raises(ValidationError):
            validate_instruction(Instruction(OpCode.BH_SYNC, (out, out)))


class TestProgramValidation:
    def test_use_after_free_rejected(self):
        view = vec(4)
        program = Program(
            [
                Instruction(OpCode.BH_IDENTITY, (view, 1)),
                Instruction(OpCode.BH_FREE, (view,)),
                Instruction(OpCode.BH_ADD, (view, view, 1)),
            ]
        )
        with pytest.raises(ValidationError, match="after BH_FREE"):
            validate_program(program)

    def test_use_after_free_names_the_base(self):
        view = vec(4, name="victim")
        program = Program(
            [
                Instruction(OpCode.BH_IDENTITY, (view, 1)),
                Instruction(OpCode.BH_FREE, (view,)),
                Instruction(OpCode.BH_ADD, (view, view, 1)),
            ]
        )
        with pytest.raises(ValidationError, match="'victim'"):
            validate_program(program)

    def test_error_mentions_instruction_position(self):
        view = vec(4)
        program = Program(
            [
                Instruction(OpCode.BH_IDENTITY, (view, 1)),
                Instruction(OpCode.BH_ADD, (view, view)),
            ]
        )
        with pytest.raises(ValidationError, match="instruction 1"):
            validate_program(program)

    def test_valid_program_passes(self):
        view = vec(4)
        program = Program(
            [
                Instruction(OpCode.BH_IDENTITY, (view, 1)),
                Instruction(OpCode.BH_ADD, (view, view, 1)),
                Instruction(OpCode.BH_SYNC, (view,)),
                Instruction(OpCode.BH_FREE, (view,)),
            ]
        )
        validate_program(program)
