"""Tests for View geometry, equality, overlap and reshaping."""

import pytest

from repro.bytecode.base import BaseArray
from repro.bytecode.view import View, contiguous_strides


class TestConstruction:
    def test_default_view_covers_base(self):
        base = BaseArray(10)
        view = View(base)
        assert view.shape == (10,)
        assert view.strides == (1,)
        assert view.offset == 0
        assert view.covers_base()

    def test_full_with_shape(self):
        base = BaseArray(12)
        view = View.full(base, (3, 4))
        assert view.shape == (3, 4)
        assert view.strides == (4, 1)
        assert view.nelem == 12

    def test_full_shape_mismatch_raises(self):
        with pytest.raises(ValueError):
            View.full(BaseArray(10), (3, 4))

    def test_from_slice_matches_paper_notation(self):
        base = BaseArray(10, name="a0")
        view = View.from_slice(base, 0, 10, 1)
        assert view.shape == (10,)
        assert view.strides == (1,)

    def test_from_slice_with_step(self):
        base = BaseArray(10)
        view = View.from_slice(base, 1, 9, 2)
        assert view.offset == 1
        assert view.shape == (4,)
        assert view.strides == (2,)

    def test_from_slice_invalid(self):
        base = BaseArray(10)
        with pytest.raises(ValueError):
            View.from_slice(base, 0, 10, 0)
        with pytest.raises(ValueError):
            View.from_slice(base, 5, 2)

    def test_out_of_bounds_rejected(self):
        base = BaseArray(10)
        with pytest.raises(ValueError):
            View(base, offset=5, shape=(10,))

    def test_stride_shape_rank_mismatch(self):
        base = BaseArray(10)
        with pytest.raises(ValueError):
            View(base, 0, (2, 5), (1,))

    def test_contiguous_strides_helper(self):
        assert contiguous_strides((3, 4, 5)) == (20, 5, 1)
        assert contiguous_strides((7,)) == (1,)
        assert contiguous_strides(()) == ()


class TestGeometry:
    def test_nelem_and_nbytes(self):
        view = View.full(BaseArray(12), (3, 4))
        assert view.nelem == 12
        assert view.nbytes == 96

    def test_is_contiguous(self):
        base = BaseArray(12)
        assert View.full(base, (3, 4)).is_contiguous()
        strided = View(base, 0, (3,), (4,))
        assert not strided.is_contiguous()

    def test_element_indices_1d_strided(self):
        base = BaseArray(10)
        view = View(base, 1, (4,), (2,))
        assert view.element_indices() == (1, 3, 5, 7)

    def test_element_indices_2d(self):
        base = BaseArray(6)
        view = View.full(base, (2, 3))
        assert view.element_indices() == (0, 1, 2, 3, 4, 5)

    def test_element_indices_2d_with_offset(self):
        base = BaseArray(16)
        view = View(base, 5, (2, 2), (4, 1))
        assert view.element_indices() == (5, 6, 9, 10)


class TestRelations:
    def test_same_view_equality(self):
        base = BaseArray(10)
        assert View.full(base) == View.full(base)
        assert View(base, 0, (5,)) != View(base, 5, (5,))

    def test_views_on_different_bases_never_equal(self):
        assert View.full(BaseArray(10)) != View.full(BaseArray(10))

    def test_hashable(self):
        base = BaseArray(10)
        assert len({View.full(base), View.full(base)}) == 1

    def test_overlap_disjoint_halves(self):
        base = BaseArray(10)
        first, second = View(base, 0, (5,)), View(base, 5, (5,))
        assert not first.overlaps(second)

    def test_overlap_shared_region(self):
        base = BaseArray(10)
        first, second = View(base, 0, (6,)), View(base, 4, (6,))
        assert first.overlaps(second)

    def test_overlap_interleaved_strided_views(self):
        base = BaseArray(10)
        evens = View(base, 0, (5,), (2,))
        odds = View(base, 1, (5,), (2,))
        assert not evens.overlaps(odds)

    def test_overlap_different_bases(self):
        assert not View.full(BaseArray(4)).overlaps(View.full(BaseArray(4)))

    def test_empty_view_never_overlaps(self):
        base = BaseArray(4)
        empty = View(base, 0, (0,))
        assert not empty.overlaps(View.full(base))


class TestReshape:
    def test_reshape_contiguous(self):
        view = View.full(BaseArray(12))
        reshaped = view.reshape((3, 4))
        assert reshaped.shape == (3, 4)
        assert reshaped.base is view.base

    def test_reshape_wrong_count(self):
        with pytest.raises(ValueError):
            View.full(BaseArray(12)).reshape((5, 3))

    def test_reshape_non_contiguous_rejected(self):
        base = BaseArray(12)
        strided = View(base, 0, (3,), (4,))
        with pytest.raises(ValueError):
            strided.reshape((3, 1))
