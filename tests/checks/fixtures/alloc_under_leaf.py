"""Lockcheck fixture: host allocation while holding the buffer-pool lock.

This file is test data for the lock-hierarchy lint — it is never imported.
"""

import threading

import numpy as np


class BufferPool:
    def __init__(self):
        self._lock = threading.Lock()  # rank 3 (leaf)

    def bad(self, nbytes):
        with self._lock:
            return np.empty(nbytes, dtype=np.uint8)
