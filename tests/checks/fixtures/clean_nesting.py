"""Lockcheck fixture: legal downward nesting — must produce no violations.

This file is test data for the lock-hierarchy lint — it is never imported.
"""

import threading


class PlanCache:
    def __init__(self):
        self._lock = threading.Lock()  # rank 2

    def get(self):
        with self._lock:
            return True


class BufferPool:
    def __init__(self):
        self._lock = threading.Lock()  # rank 3 (leaf)

    def fine(self, plan):
        with plan.lock:      # rank 2
            with self._lock:  # downward: 3 under 2 is the allowed direction
                return True

    def helper_lock_is_unranked(self, helper):
        with helper._lock:   # unrecognised owner: recorded, never judged
            return True
