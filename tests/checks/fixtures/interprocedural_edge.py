"""Lockcheck fixture: an upward edge hidden behind a same-class call.

This file is test data for the lock-hierarchy lint — it is never imported.
"""

import threading


class BufferPool:
    def __init__(self):
        self._lock = threading.Lock()        # rank 3 (leaf)
        self._cache_lock = threading.Lock()  # rank 2

    def _refill(self):
        with self._cache_lock:  # rank 2, fine on its own
            return True

    def bad(self):
        with self._lock:
            return self._refill()  # ... but not under the leaf lock
