"""Lockcheck fixture: acquires a rank-2 lock while holding the leaf lock.

This file is test data for the lock-hierarchy lint — it is never imported.
"""

import threading


class BufferPool:
    def __init__(self):
        self._lock = threading.Lock()        # rank 3 (leaf)
        self._cache_lock = threading.Lock()  # rank 2

    def bad(self):
        with self._lock:
            with self._cache_lock:  # upward edge: rank 2 under rank 3
                return True
