"""Unit tests for the between-pass IR verifier (`repro.checks.ircheck`)."""

from __future__ import annotations

import pytest

from repro.bytecode.builder import ProgramBuilder
from repro.bytecode.opcodes import OpCode
from repro.bytecode.program import Program
from repro.checks import COUNTERS
from repro.checks.ircheck import check_program, reference_facts
from repro.core.pipeline import Pipeline, default_pipeline
from repro.core.rules import Pass
from repro.utils.config import config_override
from repro.utils.errors import IRCheckError
from repro.workloads import repeated_constant_add


def _temp_chain_program():
    """t = 0; y = t + 1; SYNC y; FREE t — a one-temporary program."""
    builder = ProgramBuilder()
    t = builder.new_vector(8, name="t")
    y = builder.new_vector(8, name="y")
    builder.identity(t, 0)
    builder.add(y, t, 1)
    builder.sync(y)
    builder.free(t)
    return builder.build()


class TestCleanPrograms:
    def test_clean_program_passes(self):
        program = _temp_chain_program()
        check_program(program)  # unconditional checks only
        check_program(program, reference=reference_facts(program))

    def test_workload_programs_pass(self):
        program, _ = repeated_constant_add(16, repeats=3)
        check_program(program, reference=reference_facts(program))

    def test_counters_move(self):
        COUNTERS.reset()
        program = _temp_chain_program()
        check_program(program)
        totals = COUNTERS.snapshot()
        assert totals["ir_checks_run"] == 1
        assert totals["ir_check_failures"] == 0


class TestViolations:
    def test_dropped_store_breaks_def_before_use(self):
        program = _temp_chain_program()
        reference = reference_facts(program)
        broken = Program([i for i in program if i.opcode is not OpCode.BH_IDENTITY])
        with pytest.raises(IRCheckError, match="no .*preceding overlapping write"):
            check_program(broken, reference=reference)

    def test_dropped_store_needs_a_reference(self):
        # Without reference facts an unsatisfied read is indistinguishable
        # from a legal read of an earlier flush's base — must not raise.
        program = _temp_chain_program()
        broken = Program([i for i in program if i.opcode is not OpCode.BH_IDENTITY])
        check_program(broken)

    def test_use_after_free_is_unconditional(self):
        builder = ProgramBuilder()
        v = builder.new_vector(8)
        builder.identity(v, 0)
        builder.free(v)
        program = builder.build(validate=False)
        read_after_free = Program(list(program) + [program[0]])
        with pytest.raises(IRCheckError, match="after its BH_FREE"):
            check_program(read_after_free)

    def test_double_free(self):
        builder = ProgramBuilder()
        v = builder.new_vector(8)
        builder.identity(v, 0)
        builder.free(v)
        program = builder.build(validate=False)
        double = Program(list(program) + [program[-1]])
        with pytest.raises(IRCheckError, match="twice"):
            check_program(double)

    def test_sync_of_unwritten_base(self):
        builder = ProgramBuilder()
        v = builder.new_vector(8)
        builder.identity(v, 0)
        builder.sync(v)
        program = builder.build()
        reference = reference_facts(program)
        broken = Program([program[1]])  # the store is gone, the SYNC remains
        with pytest.raises(IRCheckError, match="store dropped before SYNC"):
            check_program(broken, reference=reference)

    def test_dropped_sync_is_an_observability_loss(self):
        program = _temp_chain_program()
        reference = reference_facts(program)
        no_sync = Program([i for i in program if i.opcode is not OpCode.BH_SYNC])
        with pytest.raises(IRCheckError, match="BH_SYNC .* dropped"):
            check_program(no_sync, reference=reference)

    def test_view_escaping_its_base(self):
        program = _temp_chain_program()
        # Corrupt in place: shift the store's output window past the base.
        program[0].out.offset = program[0].out.base.nelem
        with pytest.raises(IRCheckError, match="escapes base"):
            check_program(program)

    def test_error_names_the_instruction(self):
        program = _temp_chain_program()
        reference = reference_facts(program)
        broken = Program([i for i in program if i.opcode is not OpCode.BH_IDENTITY])
        with pytest.raises(IRCheckError) as excinfo:
            check_program(broken, reference=reference)
        assert excinfo.value.index == 0  # the add is instruction 0 after the drop
        assert "instruction 0" in str(excinfo.value)

    def test_failure_counter_moves(self):
        COUNTERS.reset()
        program = _temp_chain_program()
        reference = reference_facts(program)
        broken = Program([i for i in program if i.opcode is not OpCode.BH_IDENTITY])
        with pytest.raises(IRCheckError):
            check_program(broken, reference=reference)
        assert COUNTERS.snapshot()["ir_check_failures"] == 1


class _StoreDroppingPass(Pass):
    """A deliberately broken DCE: deletes stores that are still read."""

    name = "store_dropper"

    def run(self, program):
        stats = self._new_stats(program)
        instructions = [i for i in program if i.opcode is not OpCode.BH_IDENTITY]
        stats.rewrites_applied += len(program) - len(instructions)
        return self._finish(Program(instructions), stats)


class TestPipelineIntegration:
    def test_broken_pass_is_named(self):
        """The acceptance scenario: a live-store-dropping pass is rejected
        by the between-pass check, and the error names the pass."""
        program = _temp_chain_program()
        pipeline = Pipeline([_StoreDroppingPass()])
        with config_override(check_ir=True):
            with pytest.raises(IRCheckError, match="store_dropper.*broke the IR"):
                pipeline.run(program)

    def test_error_carries_pass_name_and_index(self):
        program = _temp_chain_program()
        pipeline = Pipeline([_StoreDroppingPass()])
        with config_override(check_ir=True):
            with pytest.raises(IRCheckError) as excinfo:
                pipeline.run(program)
        assert excinfo.value.pass_name == "store_dropper"
        assert excinfo.value.index is not None

    def test_broken_pass_passes_silently_without_the_knob(self):
        # The knob gates the cost: with checks off the pipeline trusts its
        # passes exactly as before this layer existed.
        program = _temp_chain_program()
        pipeline = Pipeline([_StoreDroppingPass()])
        report = pipeline.run(program)
        assert report.changed

    def test_default_pipeline_is_clean_under_checks(self):
        program, _ = repeated_constant_add(16, repeats=3)
        with config_override(check_ir=True):
            report = default_pipeline().run(program)
        assert report.ir_checks_run > 0
        assert report.instructions_after < report.instructions_before

    def test_report_counts_checks(self):
        program, _ = repeated_constant_add(16, repeats=3)
        with config_override(check_ir=True):
            checked = default_pipeline().run(program)
        unchecked = default_pipeline().run(program)
        assert checked.ir_checks_run > 0
        assert unchecked.ir_checks_run == 0
