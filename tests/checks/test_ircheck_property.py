"""Property-based tests (hypothesis) for the between-pass IR verifier.

Two sides of the same coin:

* **no false positives** — every program the legal optimizer produces from
  the random corpus must sail through the checker (with the pass input as
  reference);
* **no false negatives on targeted corruptions** — mechanically breaking a
  random program in the ways the checker claims to catch (deleting a live
  store, shifting a view out of its base) must raise.
"""

from __future__ import annotations

import pytest
from hypothesis import HealthCheck, assume, given, settings
from hypothesis import strategies as st

from repro.bytecode.opcodes import OpCode
from repro.bytecode.program import Program
from repro.checks.ircheck import check_program, reference_facts
from repro.core.pipeline import default_pipeline
from repro.utils.config import config_override
from repro.utils.errors import IRCheckError
from repro.workloads.generators import random_elementwise_program, random_mixed_program

_SETTINGS = settings(
    max_examples=40,
    deadline=None,
    suppress_health_check=[HealthCheck.too_slow],
)


class TestNoFalsePositives:
    @_SETTINGS
    @given(seed=st.integers(min_value=0, max_value=10_000))
    def test_legal_pipelines_never_flagged(self, seed):
        program, _ = random_elementwise_program(seed, num_instructions=10)
        with config_override(check_ir=True):
            # The pipeline itself runs check_program after every changing
            # pass; any spurious IRCheckError fails the test.
            report = default_pipeline().run(program)
        check_program(report.optimized, reference=reference_facts(program))

    @_SETTINGS
    @given(seed=st.integers(min_value=0, max_value=10_000))
    def test_mixed_programs_never_flagged(self, seed):
        program, _ = random_mixed_program(seed, num_instructions=8)
        with config_override(check_ir=True):
            default_pipeline().run(program)

    @_SETTINGS
    @given(seed=st.integers(min_value=0, max_value=10_000))
    def test_generated_programs_self_check(self, seed):
        program, _ = random_elementwise_program(seed, num_instructions=10)
        check_program(program, reference=reference_facts(program))


def _deletable_store(program):
    """Index of a store whose deletion must break def-before-use, or None.

    A candidate writes base ``b`` and is the *only* write of ``b`` before
    some later read of ``b`` — deleting it leaves that read unsatisfied.
    """
    for index, instruction in enumerate(program):
        if instruction.opcode is OpCode.BH_SYNC or instruction.opcode is OpCode.BH_FREE:
            continue
        writes = list(instruction.writes())
        if len(writes) != 1:
            continue
        base = writes[0].base
        earlier_writes = any(
            any(w.base is base for w in other.writes())
            for other in program[:index]
            if other.opcode not in (OpCode.BH_SYNC, OpCode.BH_FREE)
        )
        if earlier_writes:
            continue
        # The first later touch of the base must be a read: an intervening
        # re-definition would re-satisfy the read and mask the deletion.
        for other in program[index + 1 :]:
            if other.opcode is OpCode.BH_FREE:
                continue
            if other.opcode is OpCode.BH_SYNC:
                if any(v.base is base for v in other.views()):
                    return index
                continue
            if any(r.base is base for r in other.reads()):
                return index
            if any(w.base is base for w in other.writes()):
                break
    return None


class TestTargetedCorruptions:
    @_SETTINGS
    @given(seed=st.integers(min_value=0, max_value=10_000))
    def test_deleting_a_live_store_is_caught(self, seed):
        program, _ = random_elementwise_program(seed, num_instructions=10)
        victim = _deletable_store(program)
        assume(victim is not None)
        reference = reference_facts(program)
        broken = Program(
            [instruction for i, instruction in enumerate(program) if i != victim]
        )
        with pytest.raises(IRCheckError):
            check_program(broken, reference=reference)

    @_SETTINGS
    @given(
        seed=st.integers(min_value=0, max_value=10_000),
        shift=st.integers(min_value=1, max_value=1000),
    )
    def test_view_shifted_out_of_bounds_is_caught(self, seed, shift):
        program, _ = random_elementwise_program(seed, num_instructions=10)
        target = next(i for i in program if i.out is not None)
        # Views are plain mutable records; a buggy pass could do exactly this.
        target.out.offset = target.out.base.nelem + shift
        with pytest.raises(IRCheckError, match="escapes base"):
            check_program(program)

    @_SETTINGS
    @given(seed=st.integers(min_value=0, max_value=10_000))
    def test_dropping_every_sync_is_caught(self, seed):
        program, synced = random_elementwise_program(seed, num_instructions=10)
        assume(len(synced) > 0)
        reference = reference_facts(program)
        broken = Program(
            [i for i in program if i.opcode is not OpCode.BH_SYNC]
        )
        with pytest.raises(IRCheckError, match="dropped"):
            check_program(broken, reference=reference)
