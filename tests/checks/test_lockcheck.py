"""Tests for the lock-hierarchy lint (`repro.checks.lockcheck`)."""

from __future__ import annotations

import io
import os
import subprocess
import sys

import pytest

from repro.checks.lockcheck import main, run_lockcheck

FIXTURES = os.path.join(os.path.dirname(__file__), "fixtures")


def _fixture(name: str) -> str:
    return os.path.join(FIXTURES, name)


class TestRealTree:
    def test_package_tree_is_clean(self):
        """The shipped code obeys the documented hierarchy — the lint's
        primary acceptance property."""
        report = run_lockcheck()
        assert report.ok, report.summary()
        assert report.files_scanned > 50
        assert report.ranked_acquisitions > 20, (
            "the lint barely recognised any locks; the tables drifted from "
            "the code and a clean report proves nothing"
        )

    def test_cli_exits_zero_on_the_real_tree(self):
        assert main([]) == 0


class TestFixtures:
    def test_upward_edge_detected(self):
        report = run_lockcheck([_fixture("upward_edge.py")])
        assert not report.ok
        assert any(v.kind == "upward-edge" for v in report.violations)
        assert any("rank 2" in str(v) and "rank 3" in str(v) for v in report.violations)

    def test_allocation_under_leaf_lock_detected(self):
        report = run_lockcheck([_fixture("alloc_under_leaf.py")])
        assert not report.ok
        assert any(v.kind == "forbidden-call" for v in report.violations)
        assert any("'empty'" in str(v) for v in report.violations)

    def test_interprocedural_edge_detected(self):
        report = run_lockcheck([_fixture("interprocedural_edge.py")])
        assert not report.ok
        assert any(
            v.kind == "upward-edge" and "_refill" in v.message
            for v in report.violations
        )

    def test_clean_nesting_passes(self):
        report = run_lockcheck([_fixture("clean_nesting.py")])
        assert report.ok, report.summary()
        assert report.ranked_acquisitions >= 3
        assert report.nesting_edges >= 1  # the downward 3-under-2 nest

    def test_violations_carry_file_and_line(self):
        report = run_lockcheck([_fixture("upward_edge.py")])
        violation = report.violations[0]
        assert violation.file.endswith("upward_edge.py")
        assert violation.line > 0


class TestCli:
    def test_main_exits_nonzero_on_violation(self, capsys):
        assert main([_fixture("upward_edge.py")]) == 1
        out = capsys.readouterr().out
        assert "violation" in out
        assert "upward-edge" in out

    def test_module_entry_point(self):
        """`python -m repro.checks.lockcheck <fixture>` exits non-zero —
        the exact invocation CI uses."""
        env = dict(os.environ)
        src = os.path.join(os.path.dirname(FIXTURES), "..", "..", "src")
        env["PYTHONPATH"] = os.path.abspath(src) + os.pathsep + env.get("PYTHONPATH", "")
        completed = subprocess.run(
            [sys.executable, "-m", "repro.checks.lockcheck", _fixture("upward_edge.py")],
            capture_output=True,
            text=True,
            env=env,
        )
        assert completed.returncode == 1
        assert "upward-edge" in completed.stdout

    def test_parse_error_is_a_violation(self, tmp_path):
        bad = tmp_path / "broken.py"
        bad.write_text("def broken(:\n")
        report = run_lockcheck([str(bad)])
        assert not report.ok
        assert report.violations[0].kind == "parse-error"
