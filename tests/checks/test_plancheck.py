"""Unit tests for the plan-artifact soundness checks (`repro.checks.plancheck`)."""

from __future__ import annotations

import dataclasses

import pytest

from repro.bytecode.builder import ProgramBuilder
from repro.bytecode.view import View
from repro.checks.plancheck import (
    check_memory_plan,
    check_plan,
    check_schedule,
    check_tiling,
    maybe_check_plan,
)
from repro.core.schedule import compute_schedule
from repro.runtime.engine import ExecutionEngine
from repro.runtime.memory import BufferDirective
from repro.runtime.memplan import MemoryPlan
from repro.runtime.plan import program_base_order
from repro.runtime.tiling import TiledMapStep
from repro.utils.config import config_override
from repro.utils.errors import PlanCheckError
from repro.workloads.generators import random_elementwise_program

TINY_TILES = dict(parallel_tile_elements=16, parallel_serial_threshold=4)


def _temp_chain_program():
    """Three freed temporaries with staggered lifetimes, one synced output."""
    builder = ProgramBuilder()
    t1 = builder.new_vector(32, name="t1")
    t2 = builder.new_vector(32, name="t2")
    t3 = builder.new_vector(32, name="t3")
    y = builder.new_vector(32, name="y")
    builder.identity(t1, 1)          # 0: t1 live [0, 1]
    builder.add(t2, t1, 1)           # 1: t2 live [1, 2]
    builder.multiply(t3, t2, 2)      # 2: t3 live [2, 3]
    builder.add(y, t3, 1)            # 3
    builder.sync(y)                  # 4
    builder.free(t1)
    builder.free(t2)
    builder.free(t3)
    return builder.build()


def _position_of(program, view):
    order = program_base_order(program)
    for position, base in enumerate(order):
        if base is view.base:
            return position
    raise AssertionError(f"base {view.base.name!r} not in program order")


def _real_plan(seed=3):
    program, _ = random_elementwise_program(seed, num_instructions=12, vector_length=24)
    with config_override(**TINY_TILES, memory_plan_enabled=True):
        engine = ExecutionEngine(backend="parallel", optimize=True)
        engine.execute(program)
        plan = engine.last_plan
    assert plan is not None
    return plan


class TestMemoryPlan:
    def test_real_memory_plans_pass(self):
        for seed in (3, 7, 11):
            plan = _real_plan(seed)
            if plan.memory_plan is not None:
                check_memory_plan(plan.optimized, plan.memory_plan)

    def test_planner_output_on_temp_chain_passes(self):
        program = _temp_chain_program()
        plan = MemoryPlan.plan(program)
        check_memory_plan(program, plan)
        assert plan.aliased_bases > 0, "the chain should exercise slot sharing"

    def test_directive_for_unknown_position(self):
        program = _temp_chain_program()
        plan = MemoryPlan.plan(program)
        plan.directives[999] = BufferDirective(slot=None, slot_nbytes=0, zero_fill=True)
        with pytest.raises(PlanCheckError, match="position 999"):
            check_memory_plan(program, plan)

    def test_overlapping_lifetimes_on_one_slot(self):
        program = _temp_chain_program()
        views = {i.out.base.name: i.out for i in program[:3]}
        t1, t2 = views["t1"], views["t2"]
        nbytes = max(t1.base.nbytes, t2.base.nbytes)
        directives = {
            _position_of(program, t1): BufferDirective(0, nbytes, True),
            _position_of(program, t2): BufferDirective(0, nbytes, True),
        }
        corrupted = MemoryPlan(directives=directives)
        # t1 is live through instruction 1 and t2 starts there: sharing a
        # slot would let t2's store destroy t1 before its final read.
        with pytest.raises(PlanCheckError, match="overlapping lifetimes"):
            check_memory_plan(program, corrupted)

    def test_slot_smaller_than_occupant(self):
        program = _temp_chain_program()
        t1 = program[0].out
        directives = {_position_of(program, t1): BufferDirective(0, 1, True)}
        with pytest.raises(PlanCheckError, match="needs"):
            check_memory_plan(program, MemoryPlan(directives=directives))

    def test_observable_base_may_not_share_a_slot(self):
        program = _temp_chain_program()
        y = program[3].out  # synced, never freed: observable
        directives = {
            _position_of(program, y): BufferDirective(0, y.base.nbytes, True)
        }
        with pytest.raises(PlanCheckError, match="observable"):
            check_memory_plan(program, MemoryPlan(directives=directives))

    def test_zero_fill_waiver_needs_full_definition(self):
        builder = ProgramBuilder()
        t = builder.new_vector(8, name="t")
        y = builder.new_vector(8, name="y")
        half = View(t.base, 0, (4,))
        builder.identity(half, 1)  # only half of t is ever written
        builder.add(y, t, 1)       # ... but all of it is read
        builder.sync(y)
        builder.free(t)
        program = builder.build()
        directives = {
            _position_of(program, t): BufferDirective(None, t.base.nbytes, False)
        }
        with pytest.raises(PlanCheckError, match="not fully written"):
            check_memory_plan(program, MemoryPlan(directives=directives))


class TestSchedule:
    def test_real_schedule_passes(self):
        program = _temp_chain_program()
        schedule = compute_schedule(program)
        check_schedule(program, schedule)

    def test_reversed_order_violates_edges(self):
        program = _temp_chain_program()
        schedule = compute_schedule(program)
        reversed_items = tuple(reversed(schedule.items))
        corrupted = dataclasses.replace(schedule, items=reversed_items)
        with pytest.raises(PlanCheckError, match="dependency edge"):
            check_schedule(program, corrupted)

    def test_non_permutation_rejected(self):
        program = _temp_chain_program()
        schedule = compute_schedule(program)
        corrupted = dataclasses.replace(schedule, items=schedule.items[:-1])
        with pytest.raises(PlanCheckError, match="not a permutation"):
            check_schedule(program, corrupted)

    def test_non_elementwise_cluster_rejected(self):
        builder = ProgramBuilder()
        v = builder.new_matrix(4, 4)
        s = builder.new_vector(4)
        builder.identity(v, 1)
        builder.add_reduce(s, v, 0)
        builder.sync(s)
        program = builder.build()
        schedule = compute_schedule(program)
        # Claim the reduction fused with the store: illegal cluster.
        corrupted = dataclasses.replace(
            schedule, items=((0, 1), (2,)) if len(program) == 3 else schedule.items
        )
        with pytest.raises(PlanCheckError, match="only .*element-wise"):
            check_schedule(program, corrupted)


class TestTiling:
    def _tiled_plan(self):
        for seed in range(3, 20):
            plan = _real_plan(seed)
            tiling = plan.tiling
            if tiling is not None and any(
                isinstance(step, TiledMapStep) and len(step.spans) > 1
                for step in tiling.steps
            ):
                return plan
        raise AssertionError("no seed produced a multi-span tiled map step")

    def test_real_tiling_passes(self):
        plan = self._tiled_plan()
        check_tiling(plan.optimized, plan.tiling)

    def test_incomplete_partition_rejected(self):
        plan = self._tiled_plan()
        steps = []
        corrupted_one = False
        for step in plan.tiling.steps:
            if not corrupted_one and isinstance(step, TiledMapStep) and len(step.spans) > 1:
                steps.append(dataclasses.replace(step, spans=step.spans[:-1]))
                corrupted_one = True
            else:
                steps.append(step)
        corrupted = dataclasses.replace(plan.tiling, steps=tuple(steps))
        with pytest.raises(PlanCheckError, match="cover"):
            check_tiling(plan.optimized, corrupted)

    def test_out_of_range_step_rejected(self):
        plan = self._tiled_plan()
        steps = list(plan.tiling.steps)
        target = next(
            i for i, s in enumerate(steps) if isinstance(s, TiledMapStep)
        )
        steps[target] = dataclasses.replace(steps[target], index=len(plan.optimized) + 7)
        corrupted = dataclasses.replace(plan.tiling, steps=tuple(steps))
        with pytest.raises(PlanCheckError, match="only has"):
            check_tiling(plan.optimized, corrupted)


class TestPlanGate:
    def test_check_plan_counts_artifacts(self):
        plan = _real_plan()
        checked = check_plan(plan)
        assert checked >= 1

    def test_maybe_check_plan_respects_the_knob(self):
        plan = _real_plan()
        before = plan.plan_checks_run
        maybe_check_plan(plan)  # knob off: must not touch the plan
        assert plan.plan_checks_run == before
        with config_override(check_ir=True):
            maybe_check_plan(plan)
        assert plan.plan_checks_run > before

    def test_corrupted_cached_plan_cannot_execute(self):
        """The acceptance property: a poisoned cached artifact is caught at
        the execution gate, not silently replayed."""
        program, _ = random_elementwise_program(3, num_instructions=12, vector_length=24)
        with config_override(**TINY_TILES, memory_plan_enabled=True, check_ir=True):
            engine = ExecutionEngine(backend="parallel", optimize=True)
            engine.execute(program)
            plan = engine.last_plan
            assert plan is not None and plan.memory_plan is not None
            plan.memory_plan.directives[999] = BufferDirective(None, 0, True)
            with pytest.raises(PlanCheckError):
                engine.execute(program)
