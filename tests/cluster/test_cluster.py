"""Tests for the simulated cluster executor, partitioning and communication model."""

import numpy as np
import pytest

from repro.bytecode.view import View
from repro.bytecode.base import BaseArray
from repro.cluster import ClusterExecutor, CommunicationModel, partition_length, partition_view
from repro.core.pipeline import optimize
from repro.runtime.interpreter import NumPyInterpreter
from repro.utils.errors import ClusterError
from repro.workloads import elementwise_chain, linear_solve_program, repeated_constant_add


class TestCommunicationModel:
    def test_point_to_point_latency_plus_bandwidth(self):
        comm = CommunicationModel(latency_s=1e-6, bytes_per_second=1e9)
        assert comm.point_to_point(1e9) == pytest.approx(1.000001)

    def test_single_worker_communicates_nothing(self):
        comm = CommunicationModel()
        assert comm.gather(1, 1000) == 0.0
        assert comm.broadcast(1, 1000) == 0.0
        assert comm.allreduce(1, 1000) == 0.0

    def test_gather_scales_linearly_with_workers(self):
        comm = CommunicationModel(latency_s=0.0, bytes_per_second=1e9)
        assert comm.gather(5, 1000) == pytest.approx(4 * comm.point_to_point(1000))

    def test_broadcast_scales_logarithmically(self):
        comm = CommunicationModel(latency_s=1e-6, bytes_per_second=1e12)
        assert comm.broadcast(8, 10) == pytest.approx(3 * comm.point_to_point(10))
        assert comm.allreduce(8, 10) == pytest.approx(6 * comm.point_to_point(10))


class TestPartitioning:
    def test_even_split(self):
        assert partition_length(12, 4) == [(0, 3), (3, 3), (6, 3), (9, 3)]

    def test_remainder_goes_to_first_workers(self):
        assert partition_length(10, 4) == [(0, 3), (3, 3), (6, 2), (8, 2)]

    def test_more_workers_than_rows(self):
        # Regression: the old behavior padded with zero-count chunks
        # ((2, 0), (2, 0)), which the distributed backend would have
        # launched as empty shards.  Excess workers get no chunk at all.
        chunks = partition_length(2, 4)
        assert chunks == [(0, 1), (1, 1)]

    def test_no_chunk_is_ever_empty(self):
        # The dist planner's shard legality rests on this invariant.
        for length in range(0, 9):
            for workers in range(1, 9):
                chunks = partition_length(length, workers)
                assert all(count > 0 for _, count in chunks), (length, workers)
                covered = [
                    index
                    for start, count in chunks
                    for index in range(start, start + count)
                ]
                assert covered == list(range(length)), (length, workers)

    def test_zero_length_yields_no_chunks(self):
        assert partition_length(0, 4) == []

    def test_invalid_worker_count(self):
        with pytest.raises(ClusterError):
            partition_length(10, 0)

    def test_partition_view_covers_everything_once(self):
        view = View.full(BaseArray(100))
        parts = partition_view(view, 7)
        indices = [index for part in parts if part is not None for index in part.element_indices()]
        assert sorted(indices) == list(range(100))

    def test_partition_matrix_along_rows(self):
        view = View.full(BaseArray(24), (6, 4))
        parts = partition_view(view, 3)
        assert [part.shape for part in parts] == [(2, 4), (2, 4), (2, 4)]
        assert parts[1].offset == 8

    def test_empty_chunks_are_none(self):
        view = View.full(BaseArray(2))
        parts = partition_view(view, 4)
        assert parts[2] is None and parts[3] is None


class TestClusterExecutor:
    def test_results_match_reference_interpreter(self):
        program, out = elementwise_chain(256, length=6)
        reference = NumPyInterpreter().execute(program).value(out)
        clustered = ClusterExecutor(num_workers=4).execute(program).value(out)
        assert np.allclose(reference, clustered)

    def test_more_workers_reduce_simulated_time_for_large_arrays(self):
        program, _ = elementwise_chain(2_000_000, length=8)
        one = ClusterExecutor(num_workers=1).estimate(program).total_seconds
        eight = ClusterExecutor(num_workers=8).estimate(program).total_seconds
        assert eight < one

    def test_scaling_is_sublinear_due_to_overheads(self):
        program, _ = elementwise_chain(1_000_000, length=8)
        executor = ClusterExecutor(num_workers=1)
        curve = executor.scaling_curve(program, (1, 2, 4, 8))
        speedup_8 = curve[1] / curve[8]
        assert 1.0 < speedup_8 < 8.0

    def test_parallel_efficiency_below_one(self):
        program, _ = elementwise_chain(1_000_000, length=8)
        efficiency = ClusterExecutor(num_workers=1).parallel_efficiency(program, 8)
        assert 0.0 < efficiency < 1.0

    def test_sync_costs_communication(self):
        program, _ = repeated_constant_add(100_000, repeats=1)
        stats = ClusterExecutor(num_workers=4).estimate(program)
        assert stats.sync_rounds >= 1
        assert stats.communication_seconds > 0

    def test_single_worker_has_no_communication(self):
        program, _ = repeated_constant_add(100_000, repeats=2)
        stats = ClusterExecutor(num_workers=1).estimate(program)
        assert stats.communication_seconds == 0.0

    def test_extension_ops_serialise_and_communicate(self):
        program, _, _ = linear_solve_program(32)
        stats = ClusterExecutor(num_workers=4).estimate(program)
        assert stats.serial_instructions == 2  # inverse + matmul
        assert stats.communication_seconds > 0

    def test_optimized_program_cheaper_on_cluster(self):
        program, _ = repeated_constant_add(1_000_000, repeats=8)
        optimized = optimize(program).optimized
        executor = ClusterExecutor(num_workers=4)
        assert (
            executor.estimate(optimized).total_seconds
            < executor.estimate(program).total_seconds
        )

    def test_reductions_pay_a_gather(self):
        from repro.bytecode.builder import ProgramBuilder

        builder = ProgramBuilder()
        vector = builder.new_vector(100_000)
        total = builder.new_vector(1)
        builder.identity(vector, 1)
        builder.add_reduce(total, vector, axis=0)
        builder.sync(total)
        stats = ClusterExecutor(num_workers=4).estimate(builder.build())
        assert stats.sync_rounds >= 2  # reduction gather + final sync

    def test_stats_dictionary_shape(self):
        program, _ = repeated_constant_add(1000, repeats=2)
        stats = ClusterExecutor(num_workers=2).estimate(program)
        as_dict = stats.as_dict()
        assert set(as_dict) == {
            "workers",
            "compute_s",
            "communication_s",
            "launch_s",
            "total_s",
            "sync_rounds",
        }
        assert as_dict["total_s"] == pytest.approx(
            as_dict["compute_s"] + as_dict["communication_s"] + as_dict["launch_s"]
        )

    def test_invalid_configuration_rejected(self):
        with pytest.raises(ClusterError):
            ClusterExecutor(num_workers=0)
        with pytest.raises(ClusterError):
            ClusterExecutor(num_workers=2, profile="mainframe")

    def test_backend_execute_populates_simulated_time(self):
        program, out = repeated_constant_add(1000, repeats=2)
        result = ClusterExecutor(num_workers=2).execute(program)
        assert result.stats.simulated_time_seconds > 0
        assert np.all(result.value(out) == 2.0)
