"""Dedicated coverage for the communication cost model and its calibration.

The model prices every simulated (cluster) and real (dist halo) exchange,
so its structural properties — monotonicity in size and worker count, the
zero cost of talking to yourself, the single-worker edge cases — are load
bearing for both executors' accounting.
"""

from __future__ import annotations

import pytest

from repro.cluster.comm import (
    COMM_METER,
    CommMeter,
    CommunicationModel,
    measured_comm_model,
)


@pytest.fixture
def model():
    return CommunicationModel(latency_s=5e-6, bytes_per_second=10e9)


class TestPointToPoint:
    def test_zero_bytes_still_pays_latency(self, model):
        assert model.point_to_point(0) == pytest.approx(model.latency_s)

    def test_monotone_in_message_size(self, model):
        sizes = [0, 1, 64, 4096, 1 << 20, 1 << 28]
        costs = [model.point_to_point(size) for size in sizes]
        assert costs == sorted(costs)
        assert costs[-1] > costs[0]

    def test_bandwidth_term_dominates_large_messages(self, model):
        nbytes = 1 << 30
        assert model.point_to_point(nbytes) == pytest.approx(
            nbytes / model.bytes_per_second, rel=1e-2
        )


class TestCollectives:
    @pytest.mark.parametrize("collective", ["gather", "scatter", "broadcast", "allreduce"])
    def test_single_worker_is_free(self, model, collective):
        assert getattr(model, collective)(1, 1 << 20) == 0.0

    @pytest.mark.parametrize("collective", ["gather", "scatter", "broadcast", "allreduce"])
    def test_monotone_in_workers(self, model, collective):
        costs = [getattr(model, collective)(workers, 4096) for workers in (1, 2, 4, 8, 16)]
        assert costs == sorted(costs)
        assert costs[-1] > costs[0]

    @pytest.mark.parametrize("collective", ["gather", "scatter", "broadcast", "allreduce"])
    def test_monotone_in_bytes(self, model, collective):
        costs = [
            getattr(model, collective)(4, nbytes) for nbytes in (0, 64, 4096, 1 << 20)
        ]
        assert costs == sorted(costs)
        assert costs[-1] > costs[0]

    def test_zero_byte_collectives_price_only_latency_rounds(self, model):
        # Even empty messages pay per-round latency — the model must never
        # return a free multi-worker exchange.
        for workers in (2, 4, 8):
            assert model.gather(workers, 0) > 0.0
            assert model.broadcast(workers, 0) > 0.0
            assert model.allreduce(workers, 0) > 0.0

    def test_scatter_matches_gather(self, model):
        assert model.scatter(7, 1234) == model.gather(7, 1234)

    def test_allreduce_is_reduce_plus_broadcast(self, model):
        assert model.allreduce(8, 4096) == pytest.approx(2 * model.broadcast(8, 4096))


class TestCalibration:
    def test_calibrated_model_has_sane_constants(self):
        model = CommunicationModel.calibrated()
        assert model.latency_s > 0.0
        # Any machine that can run this suite copies shared memory faster
        # than 10 MB/s and slower than 10 TB/s.
        assert 1e7 < model.bytes_per_second < 1e13

    def test_probe_runs_once_and_is_cached(self):
        first = measured_comm_model()
        second = measured_comm_model()
        assert first is second
        assert CommunicationModel.calibrated() is first

    def test_calibrated_model_prices_monotonically(self):
        model = CommunicationModel.calibrated()
        assert model.point_to_point(1 << 20) > model.point_to_point(64)


class TestCommMeter:
    def test_priced_and_measured_accumulate_separately(self):
        meter = CommMeter()
        meter.add_priced(1e-3)
        meter.add_priced(2e-3)
        meter.add_measured(5e-4)
        snapshot = meter.snapshot_us()
        assert snapshot["comm_priced_us"] == 3000
        assert snapshot["comm_measured_us"] == 500

    def test_reset(self):
        meter = CommMeter()
        meter.add_priced(1.0)
        meter.reset()
        assert meter.snapshot_us() == {"comm_priced_us": 0, "comm_measured_us": 0}

    def test_module_singleton_snapshot_shape(self):
        snapshot = COMM_METER.snapshot_us()
        assert set(snapshot) == {"comm_priced_us", "comm_measured_us"}
        assert all(isinstance(value, int) for value in snapshot.values())
