"""On-disk compiled-artifact cache: hygiene, corruption and concurrency.

The cache directory is shared state — between backend instances, between
processes, between CI runs restored from an artifact cache — so its failure
contract matters more than its hit rate: **corruption may cost a compile,
never correctness**.  Every test here damages the store in a specific way
(truncation, bit rot, sidecar loss, schema drift, racing writers) and
asserts the reader degrades to a clean recompile with a verifiable artifact
left behind.
"""

from __future__ import annotations

import json
import os
import subprocess
import sys

import pytest

from repro.codegen import artifact_digest, clear_memory_cache, find_c_compiler
from repro.codegen.cache import (
    ARTIFACT_SCHEMA,
    _artifact_paths,
    get_compiled_kernel,
    memory_cache_size,
)
from repro.codegen.compiler import CompilerUnavailable

requires_compiler = pytest.mark.skipif(
    find_c_compiler() is None, reason="no C compiler on this host"
)


def _source(tag: str) -> str:
    """A trivial but unique kernel source (unique digest per ``tag``)."""
    return (
        "#include <stdint.h>\n"
        f"/* cache-test kernel: {tag} */\n"
        "void repro_kernel(const int64_t *dims, char **ptrs,\n"
        "                  const int64_t *strides) {\n"
        "    (void)dims; (void)ptrs; (void)strides;\n"
        "}\n"
    )


@pytest.fixture(autouse=True)
def fresh_memory_cache():
    clear_memory_cache()
    yield
    clear_memory_cache()


def _compile(source, cache_dir, **kwargs):
    return get_compiled_kernel(source, cache_dir=str(cache_dir), **kwargs)


@requires_compiler
class TestCacheLifecycle:
    def test_outcome_sequence_compiled_memory_disk(self, tmp_path):
        source = _source("lifecycle")
        _, outcome = _compile(source, tmp_path)
        assert outcome == "compiled"
        _, outcome = _compile(source, tmp_path)
        assert outcome == "memory"
        clear_memory_cache()
        _, outcome = _compile(source, tmp_path)
        assert outcome == "disk"
        assert memory_cache_size() == 1  # disk hit repopulates the memo

    def test_artifact_triple_on_disk(self, tmp_path):
        source = _source("triple")
        _compile(source, tmp_path)
        digest = artifact_digest(source, 2)
        so_path, meta_path, c_path = _artifact_paths(str(tmp_path), digest)
        assert os.path.isfile(so_path)
        assert os.path.isfile(c_path)
        meta = json.loads(open(meta_path).read())
        assert meta["schema"] == ARTIFACT_SCHEMA
        assert len(meta["sha256"]) == 64
        # No temp files leaked by the atomic-rename publication.
        assert not [name for name in os.listdir(tmp_path) if ".tmp" in name]

    def test_opt_level_changes_the_digest(self):
        source = _source("optlevel")
        assert artifact_digest(source, 0) != artifact_digest(source, 2)

    def test_mt_mode_changes_the_digest(self):
        # The threading mode changes the compile flags (-pthread/-fopenmp),
        # so artifacts built under different modes may never alias; the
        # thread *count* is a runtime argument and has no digest input.
        source = _source("mtmode")
        digests = {
            mode: artifact_digest(source, 2, mt_mode=mode)
            for mode in ("serial", "pthread", "openmp")
        }
        assert len(set(digests.values())) == 3

    def test_mt_symbol_binding_is_optional(self, tmp_path):
        # Hand-written kernels (and any pre-ABI source) without the
        # chunked symbol load fine; fn_mt is simply absent.
        kernel, _ = _compile(_source("nomtsymbol"), tmp_path)
        assert kernel.fn is not None
        assert kernel.fn_mt is None

    def test_mt_symbol_binds_when_exported(self, tmp_path):
        source = (
            "#include <stdint.h>\n"
            "void repro_kernel(const int64_t *dims, char **ptrs,\n"
            "                  const int64_t *strides) {\n"
            "    (void)dims; (void)ptrs; (void)strides;\n"
            "}\n"
            "void repro_kernel_mt(const int64_t *dims, char **ptrs,\n"
            "                     const int64_t *strides, int32_t nthreads) {\n"
            "    (void)nthreads;\n"
            "    repro_kernel(dims, ptrs, strides);\n"
            "}\n"
        )
        kernel, _ = _compile(source, tmp_path)
        assert kernel.fn is not None
        assert kernel.fn_mt is not None

    def test_disk_cache_disabled_writes_nothing(self, tmp_path):
        _, outcome = _compile(_source("nodisk"), tmp_path, use_disk=False)
        assert outcome == "compiled"
        assert not os.path.exists(tmp_path) or not os.listdir(tmp_path)

    def test_compiler_unavailable_raises(self, tmp_path, monkeypatch):
        monkeypatch.setattr("repro.codegen.cache.find_c_compiler", lambda: None)
        with pytest.raises(CompilerUnavailable):
            _compile(_source("nocompiler"), tmp_path)


@requires_compiler
class TestCorruption:
    """Each damage mode must be detected, discarded and recompiled.

    The pristine artifact is produced by a *subprocess*: corruption on disk
    is only ever observed by a process that has not already loaded that
    artifact (a loaded one is served from the in-process memo and never
    re-read), and a process must not ``dlopen`` a path, mutate the file in
    place, and load the same path again — the dynamic loader dedups by
    name and would hand back the stale mapping.
    """

    def _damaged_reload(self, tmp_path, tag, damage):
        source = _source(tag)
        _compile_in_subprocess(source, tmp_path)
        digest = artifact_digest(source, 2)
        paths = _artifact_paths(str(tmp_path), digest)
        damage(*paths)
        kernel, outcome = _compile(source, tmp_path)
        assert outcome == "compiled", "damaged artifact must recompile, not load"
        assert kernel.fn is not None
        # The store healed: a cold reader now gets a verified disk hit.
        clear_memory_cache()
        _, outcome = _compile(source, tmp_path)
        assert outcome == "disk"

    def test_truncated_library(self, tmp_path):
        def truncate(so_path, meta_path, c_path):
            size = os.path.getsize(so_path)
            with open(so_path, "r+b") as handle:
                handle.truncate(size // 2)

        self._damaged_reload(tmp_path, "truncated", truncate)

    def test_emptied_library(self, tmp_path):
        def empty(so_path, meta_path, c_path):
            open(so_path, "wb").close()

        self._damaged_reload(tmp_path, "emptied", empty)

    def test_bit_rot_hash_mismatch(self, tmp_path):
        def flip(so_path, meta_path, c_path):
            with open(so_path, "r+b") as handle:
                handle.seek(0, os.SEEK_END)
                handle.write(b"\x00garbage")

        self._damaged_reload(tmp_path, "bitrot", flip)

    def test_garbage_library_with_matching_hash(self, tmp_path):
        # The sidecar verifies, but the loader must still reject the blob:
        # dlopen failure is the last line of defence.
        import hashlib

        def forge(so_path, meta_path, c_path):
            blob = b"\x7fNOT-AN-ELF"
            with open(so_path, "wb") as handle:
                handle.write(blob)
            meta = json.loads(open(meta_path).read())
            meta["sha256"] = hashlib.sha256(blob).hexdigest()
            with open(meta_path, "w") as handle:
                json.dump(meta, handle)

        self._damaged_reload(tmp_path, "forged", forge)

    def test_missing_sidecar(self, tmp_path):
        def drop(so_path, meta_path, c_path):
            os.unlink(meta_path)

        self._damaged_reload(tmp_path, "nosidecar", drop)

    def test_unparseable_sidecar(self, tmp_path):
        def scribble(so_path, meta_path, c_path):
            with open(meta_path, "w") as handle:
                handle.write("{not json")

        self._damaged_reload(tmp_path, "badjson", scribble)

    def test_schema_drift(self, tmp_path):
        def bump(so_path, meta_path, c_path):
            meta = json.loads(open(meta_path).read())
            meta["schema"] = ARTIFACT_SCHEMA + 1
            with open(meta_path, "w") as handle:
                json.dump(meta, handle)

        self._damaged_reload(tmp_path, "schema", bump)

    def test_previous_schema_artifacts_are_discarded(self, tmp_path):
        """A store restored from before the mt ABI must fully recompile.

        Schema-1 artifacts export only ``repro_kernel``; dlopen'ing one
        under the current ABI would hand the backend a library without the
        chunked entry point.  The version gate must treat them exactly
        like corruption: discard, recompile, republish under the current
        schema.
        """

        def downgrade(so_path, meta_path, c_path):
            meta = json.loads(open(meta_path).read())
            meta["schema"] = ARTIFACT_SCHEMA - 1
            with open(meta_path, "w") as handle:
                json.dump(meta, handle)

        self._damaged_reload(tmp_path, "oldschema", downgrade)
        # _damaged_reload already proved recompile + healed disk hit; the
        # republished sidecar must carry the current schema.
        digest = artifact_digest(_source("oldschema"), 2)
        _, meta_path, _ = _artifact_paths(str(tmp_path), digest)
        assert json.loads(open(meta_path).read())["schema"] == ARTIFACT_SCHEMA

    def test_discarded_artifacts_are_removed(self, tmp_path):
        source = _source("removal")
        _compile(source, tmp_path)
        digest = artifact_digest(source, 2)
        so_path, meta_path, _ = _artifact_paths(str(tmp_path), digest)
        clear_memory_cache()
        with open(meta_path, "w") as handle:
            handle.write("rotten")
        _compile(source, tmp_path)  # recompiles and republishes
        assert os.path.isfile(so_path)
        assert json.loads(open(meta_path).read())["schema"] == ARTIFACT_SCHEMA


#: Worker script: compile one kernel form into a shared cache dir and print
#: the outcome.  Run as a subprocess so the worker is a genuinely cold
#: process (empty in-process memo, no loaded artifacts), like a fresh
#: service start.
_RACER = """
import sys
sys.path.insert(0, {src!r})
from repro.codegen.cache import get_compiled_kernel
source = open({source_path!r}).read()
kernel, outcome = get_compiled_kernel(source, cache_dir={cache_dir!r})
assert kernel.fn is not None
print(outcome)
"""

_SRC_ROOT = os.path.abspath(
    os.path.join(os.path.dirname(__file__), "..", "..", "src")
)


def _compile_in_subprocess(source: str, cache_dir, tmp_dir=None) -> str:
    """Populate ``cache_dir`` with ``source``'s artifact from a cold process."""
    tmp_dir = tmp_dir if tmp_dir is not None else cache_dir
    source_path = os.path.join(str(tmp_dir), "kernel_source.c.txt")
    os.makedirs(str(cache_dir), exist_ok=True)
    with open(source_path, "w") as handle:
        handle.write(source)
    script = _RACER.format(
        src=_SRC_ROOT, source_path=source_path, cache_dir=str(cache_dir)
    )
    result = subprocess.run(
        [sys.executable, "-c", script], capture_output=True, text=True, timeout=120
    )
    assert result.returncode == 0, result.stderr
    os.unlink(source_path)
    return result.stdout.strip()


@requires_compiler
class TestConcurrency:
    def test_racing_processes_compile_the_same_form(self, tmp_path):
        """Two cold processes, one kernel form, one shared cache directory.

        Whatever the interleaving — both compile, or one wins the rename
        race and the other reads it — both must end with a working kernel,
        and the directory must end consistent (verified artifact, no temp
        litter).
        """
        source_path = tmp_path / "kernel_source.c.txt"
        source_path.write_text(_source("race"))
        cache_dir = tmp_path / "cache"
        script = _RACER.format(
            src=_SRC_ROOT,
            source_path=str(source_path),
            cache_dir=str(cache_dir),
        )
        racers = [
            subprocess.Popen(
                [sys.executable, "-c", script],
                stdout=subprocess.PIPE,
                stderr=subprocess.PIPE,
                text=True,
            )
            for _ in range(2)
        ]
        outcomes = []
        for racer in racers:
            stdout, stderr = racer.communicate(timeout=120)
            assert racer.returncode == 0, stderr
            outcomes.append(stdout.strip())
        assert all(outcome in ("compiled", "disk") for outcome in outcomes)
        # The surviving store is coherent: this process loads it verified.
        clear_memory_cache()
        _, outcome = _compile(source_path.read_text(), cache_dir)
        assert outcome == "disk"
        assert not [name for name in os.listdir(cache_dir) if ".tmp" in name]
