"""Shared pytest fixtures."""

from __future__ import annotations

import numpy as np
import pytest

from repro.checks import COUNTERS
from repro.frontend.session import Session, set_session
from repro.runtime.interpreter import NumPyInterpreter
from repro.utils.config import Config, set_config


@pytest.fixture(autouse=True)
def clean_global_state():
    """Reset global configuration, the default session and check counters."""
    set_config(Config())
    set_session(Session())
    COUNTERS.reset()
    yield
    set_config(Config())
    set_session(Session())
    COUNTERS.reset()


@pytest.fixture
def interpreter() -> NumPyInterpreter:
    """A reference interpreter instance."""
    return NumPyInterpreter()


@pytest.fixture
def rng() -> np.random.Generator:
    """A deterministic NumPy random generator."""
    return np.random.default_rng(0xC0FFEE)


def run_program(program, memory=None):
    """Execute a program on the reference interpreter (test helper)."""
    return NumPyInterpreter().execute(program, memory)
