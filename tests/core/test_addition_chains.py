"""Tests for addition-chain construction (paper Equation 1, Listings 4-5)."""

import pytest

from repro.core.addition_chains import (
    available_strategies,
    binary_chain,
    chain_for,
    chain_multiply_count,
    naive_chain,
    optimal_chain,
    power_of_two_chain,
)


class TestNaiveChain:
    def test_listing_4_count_for_ten(self):
        # Listing 4: x^10 with nine BH_MULTIPLYs.
        assert naive_chain(10).num_multiplies == 9

    @pytest.mark.parametrize("n", [1, 2, 3, 7, 20])
    def test_count_is_n_minus_one(self, n):
        assert naive_chain(n).num_multiplies == max(0, n - 1)

    def test_chain_is_valid_and_two_register(self):
        chain = naive_chain(12)
        assert chain.is_valid()
        assert chain.fits_two_registers()


class TestPowerOfTwoChain:
    def test_listing_5_chain_for_ten(self):
        # Listing 5: x^2, x^4, x^8, x^9, x^10 — five BH_MULTIPLYs.
        chain = power_of_two_chain(10)
        assert chain.values == (1, 2, 4, 8, 9, 10)
        assert chain.num_multiplies == 5
        assert chain.fits_two_registers()

    @pytest.mark.parametrize("n, expected", [(2, 1), (4, 2), (8, 3), (16, 4), (15, 10), (9, 4)])
    def test_counts(self, n, expected):
        assert power_of_two_chain(n).num_multiplies == expected

    @pytest.mark.parametrize("n", range(2, 40))
    def test_valid_for_small_exponents(self, n):
        chain = power_of_two_chain(n)
        assert chain.is_valid()
        assert chain.fits_two_registers()


class TestBinaryChain:
    def test_ten_needs_four_multiplies(self):
        chain = binary_chain(10)
        assert chain.num_multiplies == 4
        assert chain.values[-1] == 10
        assert chain.fits_two_registers()

    @pytest.mark.parametrize("n", range(2, 65))
    def test_count_formula(self, n):
        expected = (n.bit_length() - 1) + bin(n).count("1") - 1
        assert binary_chain(n).num_multiplies == expected

    @pytest.mark.parametrize("n", range(2, 65))
    def test_valid_and_two_register(self, n):
        chain = binary_chain(n)
        assert chain.is_valid()
        assert chain.fits_two_registers()

    @pytest.mark.parametrize("n", [2, 4, 8, 16, 32, 64])
    def test_powers_of_two_use_only_squarings(self, n):
        chain = binary_chain(n)
        assert chain.num_multiplies == n.bit_length() - 1

    @pytest.mark.parametrize("n", range(2, 65))
    def test_never_worse_than_paper_strategy(self, n):
        assert binary_chain(n).num_multiplies <= power_of_two_chain(n).num_multiplies


class TestOptimalChain:
    @pytest.mark.parametrize("n", range(1, 33))
    def test_valid(self, n):
        assert optimal_chain(n).is_valid()

    @pytest.mark.parametrize("n", range(2, 33))
    def test_never_worse_than_binary(self, n):
        assert optimal_chain(n).num_multiplies <= binary_chain(n).num_multiplies

    @pytest.mark.parametrize(
        "n, length",
        [(15, 5), (23, 6), (31, 7), (2, 1), (3, 2), (7, 4)],
    )
    def test_known_optimal_lengths(self, n, length):
        assert optimal_chain(n).num_multiplies == length

    def test_fifteen_beats_binary(self):
        # The classic example: binary needs 6 multiplies, the optimal chain 5.
        assert binary_chain(15).num_multiplies == 6
        assert optimal_chain(15).num_multiplies == 5


class TestChainAPI:
    def test_strategy_lookup(self):
        assert chain_for(10, "naive").strategy == "naive"
        assert chain_for(10, "optimal").strategy == "optimal"
        with pytest.raises(KeyError):
            chain_for(10, "magic")

    def test_available_strategies(self):
        assert set(available_strategies()) == {"naive", "power_of_two", "binary", "optimal"}

    def test_chain_multiply_count_helper(self):
        assert chain_multiply_count(10, "naive") == 9
        assert chain_multiply_count(10, "power_of_two") == 5
        assert chain_multiply_count(10, "binary") == 4

    @pytest.mark.parametrize("bad", [0, -1, -10])
    def test_non_positive_exponent_rejected(self, bad):
        with pytest.raises(ValueError):
            naive_chain(bad)
        with pytest.raises(ValueError):
            binary_chain(bad)

    def test_exponent_one_is_empty_chain(self):
        for strategy in available_strategies():
            chain = chain_for(1, strategy)
            assert chain.num_multiplies == 0
            assert chain.values == (1,)
