"""Tests for the dataflow analysis used by the context-aware rewrites."""

import pytest

from repro.bytecode.base import BaseArray
from repro.bytecode.builder import ProgramBuilder
from repro.bytecode.instruction import Instruction
from repro.bytecode.opcodes import OpCode
from repro.bytecode.program import Program
from repro.bytecode.view import View
from repro.core.analysis import (
    DefUse,
    base_read_between,
    base_written_between,
    is_dead_after,
    observable_views,
    reads_of_base,
    writes_to_base,
)


def sample_program():
    builder = ProgramBuilder()
    a = builder.new_vector(8)
    b = builder.new_vector(8)
    c = builder.new_vector(8)
    builder.identity(a, 1)          # 0: write a
    builder.identity(b, 2)          # 1: write b
    builder.add(c, a, b)            # 2: read a, b; write c
    builder.multiply(c, c, 2)       # 3: read c; write c
    builder.sync(c)                 # 4: sync c
    builder.free(a)                 # 5: free a
    return builder.build(), a, b, c


class TestDefUse:
    def test_reads_and_writes_indexed(self):
        program, a, b, c = sample_program()
        defuse = DefUse.analyze(program)
        assert [acc.index for acc in defuse.writes_of(a.base)] == [0]
        assert [acc.index for acc in defuse.reads_of(a.base)] == [2]
        assert [acc.index for acc in defuse.writes_of(c.base)] == [2, 3]
        assert [acc.index for acc in defuse.reads_of(c.base)] == [3, 4]

    def test_sync_and_free_tracking(self):
        program, a, b, c = sample_program()
        defuse = DefUse.analyze(program)
        assert defuse.is_synced(c.base)
        assert not defuse.is_synced(a.base)
        assert defuse.is_freed(a.base)
        assert not defuse.is_freed(c.base)
        assert defuse.sync_indices(c.base) == (4,)

    def test_indices_after(self):
        program, a, b, c = sample_program()
        defuse = DefUse.analyze(program)
        assert defuse.read_indices_after(c.base, 2) == (3, 4)
        assert defuse.read_indices_after(c.base, 4) == ()
        assert defuse.write_indices_after(c.base, 2) == (3,)


class TestStandaloneQueries:
    def test_reads_and_writes_to_base(self):
        program, a, b, c = sample_program()
        assert reads_of_base(program, a.base) == [2]
        assert writes_to_base(program, c.base) == [2, 3]

    def test_base_read_between(self):
        program, a, b, c = sample_program()
        assert base_read_between(program, a.base, 0, 3)
        assert not base_read_between(program, a.base, 2, 5)

    def test_base_written_between(self):
        program, a, b, c = sample_program()
        assert base_written_between(program, c.base, 2, 4)
        assert not base_written_between(program, a.base, 0, 5)

    def test_within_view_restriction(self):
        base = BaseArray(10)
        left = View(base, 0, (5,))
        right = View(base, 5, (5,))
        program = Program(
            [
                Instruction(OpCode.BH_IDENTITY, (left, 1.0)),
                Instruction(OpCode.BH_IDENTITY, (right, 2.0)),
                Instruction(OpCode.BH_ADD, (left, left, 1.0)),
            ]
        )
        # Between 0 and 2 the base is written (index 1) but only in the
        # right half, so a query restricted to the left half sees nothing.
        assert base_written_between(program, base, 0, 2)
        assert not base_written_between(program, base, 0, 2, within=left)


class TestLiveness:
    def test_value_read_later_is_live(self):
        program, a, b, c = sample_program()
        assert not is_dead_after(program, 0, a)  # a is read at 2

    def test_value_freed_without_read_is_dead(self):
        program, a, b, c = sample_program()
        assert is_dead_after(program, 2, a)  # after the add, a is only freed

    def test_synced_value_is_live(self):
        program, a, b, c = sample_program()
        assert not is_dead_after(program, 3, c)

    def test_unfreed_value_at_end_is_conservatively_live(self):
        program, a, b, c = sample_program()
        # After the add (index 2) nothing reads b again, but b is never
        # freed either: the front-end may still observe it in a later flush.
        assert not is_dead_after(program, 2, b)
        assert is_dead_after(program, 2, b, observable_at_end=False)

    def test_complete_overwrite_kills_value(self):
        builder = ProgramBuilder()
        v = builder.new_vector(4)
        builder.identity(v, 1)
        builder.identity(v, 2)
        builder.sync(v)
        program = builder.build()
        assert is_dead_after(program, 0, v)

    def test_partial_overwrite_does_not_kill_value(self):
        base = BaseArray(8)
        full = View.full(base)
        half = View(base, 0, (4,))
        program = Program(
            [
                Instruction(OpCode.BH_IDENTITY, (full, 1.0)),
                Instruction(OpCode.BH_IDENTITY, (half, 2.0)),
                Instruction(OpCode.BH_SYNC, (full,)),
            ]
        )
        assert not is_dead_after(program, 0, full)


class TestObservableViews:
    def test_synced_and_surviving_bases_are_observable(self):
        program, a, b, c = sample_program()
        observable_bases = {view.base for view in observable_views(program)}
        assert c.base in observable_bases     # synced
        assert b.base in observable_bases     # written, never freed
        assert a.base not in observable_bases  # freed and not synced

    def test_untouched_bases_are_not_observable(self):
        builder = ProgramBuilder()
        used = builder.new_vector(4)
        builder.new_vector(4)  # never referenced by any instruction
        builder.identity(used, 1)
        program = builder.build()
        assert {view.base for view in observable_views(program)} == {used.base}


# Independent scan-based reference implementations (the pre-index helpers):
# the library's stand-alone functions are now thin wrappers over DefUse, so
# comparing against *them* would be tautological.


def _scan_written_between(program, base, start, stop, within=None):
    for index in range(start + 1, stop):
        if index < 0 or index >= len(program):
            continue
        for view in program[index].writes():
            if view.base is base and (within is None or view.overlaps(within)):
                return True
    return False


def _scan_read_between(program, base, start, stop, within=None):
    for index in range(start + 1, stop):
        if index < 0 or index >= len(program):
            continue
        instruction = program[index]
        views = (
            instruction.views()
            if instruction.opcode is OpCode.BH_SYNC
            else instruction.reads()
        )
        for view in views:
            if view.base is base and (within is None or view.overlaps(within)):
                return True
    return False


def _scan_is_dead_after(program, index, view, observable_at_end=True):
    base = view.base
    for later in range(index + 1, len(program)):
        instruction = program[later]
        if instruction.opcode is OpCode.BH_SYNC:
            if any(v.base is base for v in instruction.views()):
                return False
            continue
        if instruction.opcode is OpCode.BH_FREE:
            if any(v.base is base for v in instruction.views()):
                return True
            continue
        for read_view in instruction.reads():
            if read_view.base is base and read_view.overlaps(view):
                return False
        for write_view in instruction.writes():
            if write_view.base is base and (
                write_view.same_view(view) or write_view.covers_base()
            ):
                return True
    return not observable_at_end


class TestIndexedQueries:
    """DefUse methods and wrapper helpers must agree with independent scans."""

    def test_written_between_matches_scan(self):
        program, a, b, c = sample_program()
        defuse = DefUse.analyze(program)
        for base in (a.base, b.base, c.base):
            for start in range(-1, len(program)):
                for stop in range(start, len(program) + 1):
                    expected = _scan_written_between(program, base, start, stop)
                    assert defuse.written_between(base, start, stop) == expected
                    assert base_written_between(program, base, start, stop) == expected

    def test_read_between_matches_scan(self):
        program, a, b, c = sample_program()
        defuse = DefUse.analyze(program)
        for base in (a.base, b.base, c.base):
            for start in range(-1, len(program)):
                for stop in range(start, len(program) + 1):
                    expected = _scan_read_between(program, base, start, stop)
                    assert defuse.read_between(base, start, stop) == expected
                    assert base_read_between(program, base, start, stop) == expected

    def test_written_between_respects_window(self):
        builder = ProgramBuilder()
        base = BaseArray(8)
        left = View(base, 0, (4,), (1,))
        right = View(base, 4, (4,), (1,))
        builder.identity(right, 1)
        builder.identity(builder.new_vector(4), 2)
        program = builder.build(validate=False)
        defuse = DefUse.analyze(program)
        assert defuse.written_between(base, -1, 2)
        assert not defuse.written_between(base, -1, 2, within=left)

    def test_value_dead_after_matches_scan(self):
        program, a, b, c = sample_program()
        defuse = DefUse.analyze(program)
        for view in (a, b, c):
            for index in range(len(program)):
                for observable in (True, False):
                    expected = _scan_is_dead_after(
                        program, index, view, observable_at_end=observable
                    )
                    assert defuse.value_dead_after(
                        index, view, observable_at_end=observable
                    ) == expected
                    assert is_dead_after(
                        program, index, view, observable_at_end=observable
                    ) == expected

    def test_value_dead_after_overwrite_then_sync(self):
        builder = ProgramBuilder()
        v = builder.new_vector(4)
        builder.identity(v, 1)
        builder.identity(v, 2)
        builder.sync(v)
        program = builder.build()
        defuse = DefUse.analyze(program)
        # The complete overwrite at 1 kills the value written at 0 even
        # though the base is synced later (the sync observes the new value).
        assert defuse.value_dead_after(0, v)
        assert not defuse.value_dead_after(1, v)
