"""Tests for the clean-up passes: identity simplification, copy propagation, DCE."""

import numpy as np
import pytest

from repro.bytecode.builder import ProgramBuilder
from repro.bytecode.opcodes import OpCode
from repro.core.copy_propagation import CopyPropagationPass
from repro.core.dce import DeadCodeEliminationPass
from repro.core.identity_simplify import IdentitySimplifyPass
from repro.core.verifier import SemanticVerifier
from repro.runtime.interpreter import NumPyInterpreter


class TestIdentitySimplify:
    def test_add_zero_in_place_is_dropped(self):
        builder = ProgramBuilder()
        v = builder.new_vector(4)
        builder.identity(v, 5)
        builder.add(v, v, 0)
        builder.sync(v)
        result = IdentitySimplifyPass().run(builder.build())
        assert result.changed
        assert result.program.count(OpCode.BH_ADD) == 0

    def test_add_zero_to_other_view_becomes_copy(self):
        builder = ProgramBuilder()
        x = builder.new_vector(4)
        y = builder.new_vector(4)
        builder.identity(x, 5)
        builder.add(y, x, 0)
        builder.sync(y)
        result = IdentitySimplifyPass().run(builder.build())
        kept = [i for i in result.program if i.opcode is OpCode.BH_IDENTITY]
        assert len(kept) == 2
        assert result.program.count(OpCode.BH_ADD) == 0

    @pytest.mark.parametrize(
        "method, constant",
        [("multiply", 1), ("divide", 1), ("subtract", 0), ("power", 1)],
    )
    def test_neutral_element_in_place_dropped(self, method, constant):
        builder = ProgramBuilder()
        v = builder.new_vector(4)
        builder.identity(v, 3)
        getattr(builder, method)(v, v, constant)
        builder.sync(v)
        result = IdentitySimplifyPass().run(builder.build())
        assert len(result.program) == 2

    def test_multiply_by_zero_becomes_fill(self):
        builder = ProgramBuilder()
        v = builder.new_vector(4)
        builder.identity(v, 3)
        builder.multiply(v, v, 0)
        builder.sync(v)
        result = IdentitySimplifyPass().run(builder.build())
        fills = [i for i in result.program if i.opcode is OpCode.BH_IDENTITY]
        assert len(fills) == 2
        assert fills[1].constant.value == 0

    def test_power_zero_becomes_ones(self):
        builder = ProgramBuilder()
        x = builder.new_vector(4)
        y = builder.new_vector(4)
        builder.power(y, x, 0)
        builder.sync(y)
        result = IdentitySimplifyPass().run(builder.build())
        assert result.program.count(OpCode.BH_POWER) == 0
        values = NumPyInterpreter().execute(result.program).value(y)
        assert np.all(values == 1.0)

    def test_self_copy_dropped(self):
        builder = ProgramBuilder()
        v = builder.new_vector(4)
        builder.identity(v, v)
        builder.sync(v)
        result = IdentitySimplifyPass().run(builder.build())
        assert len(result.program) == 1

    def test_commutative_constant_on_left_recognised(self):
        builder = ProgramBuilder()
        v = builder.new_vector(4)
        builder.identity(v, 2)
        builder.multiply(v, 1, v)
        builder.sync(v)
        result = IdentitySimplifyPass().run(builder.build())
        assert result.program.count(OpCode.BH_MULTIPLY) == 0

    def test_meaningful_operations_untouched(self):
        builder = ProgramBuilder()
        v = builder.new_vector(4)
        builder.identity(v, 2)
        builder.add(v, v, 3)
        builder.multiply(v, v, 2)
        builder.sync(v)
        program = builder.build()
        result = IdentitySimplifyPass().run(program)
        assert not result.changed
        assert result.program == program

    def test_semantics_preserved(self):
        builder = ProgramBuilder()
        v = builder.new_vector(8)
        builder.identity(v, 2)
        builder.add(v, v, 0)
        builder.multiply(v, v, 1)
        builder.add(v, v, 5)
        builder.sync(v)
        program = builder.build()
        result = IdentitySimplifyPass().run(program)
        assert SemanticVerifier().equivalent(program, result.program)


class TestCopyPropagation:
    def test_reader_redirected_to_source(self):
        builder = ProgramBuilder()
        x = builder.new_vector(4)
        temp = builder.new_vector(4)
        y = builder.new_vector(4)
        builder.identity(x, 3)
        builder.identity(temp, x)       # temp = x
        builder.add(y, temp, 1)         # reads temp
        builder.sync(y)
        result = CopyPropagationPass().run(builder.build())
        assert result.changed
        add = [i for i in result.program if i.opcode is OpCode.BH_ADD][0]
        assert add.input_views[0].base is x.base

    def test_propagation_stops_at_source_overwrite(self):
        builder = ProgramBuilder()
        x = builder.new_vector(4)
        temp = builder.new_vector(4)
        y = builder.new_vector(4)
        builder.identity(x, 3)
        builder.identity(temp, x)
        builder.identity(x, 99)         # source changes value
        builder.add(y, temp, 1)         # must keep reading temp
        builder.sync(y)
        program = builder.build()
        result = CopyPropagationPass().run(program)
        add = [i for i in result.program if i.opcode is OpCode.BH_ADD][0]
        assert add.input_views[0].base is temp.base
        assert SemanticVerifier().equivalent(program, result.program)

    def test_propagation_stops_at_destination_overwrite(self):
        builder = ProgramBuilder()
        x = builder.new_vector(4)
        temp = builder.new_vector(4)
        y = builder.new_vector(4)
        builder.identity(x, 3)
        builder.identity(temp, x)
        builder.identity(temp, 50)      # temp now holds something else
        builder.add(y, temp, 1)
        builder.sync(y)
        program = builder.build()
        result = CopyPropagationPass().run(program)
        add = [i for i in result.program if i.opcode is OpCode.BH_ADD][0]
        assert add.input_views[0].base is temp.base

    def test_propagation_stops_at_free_of_source(self):
        builder = ProgramBuilder()
        x = builder.new_vector(4)
        temp = builder.new_vector(4)
        y = builder.new_vector(4)
        builder.identity(x, 3)
        builder.identity(temp, x)
        builder.free(x)
        builder.add(y, temp, 1)
        builder.sync(y)
        program = builder.build()
        result = CopyPropagationPass().run(program)
        add = [i for i in result.program if i.opcode is OpCode.BH_ADD][0]
        assert add.input_views[0].base is temp.base

    def test_copy_then_dce_removes_temporary(self):
        builder = ProgramBuilder()
        x = builder.new_vector(4)
        temp = builder.new_vector(4)
        y = builder.new_vector(4)
        builder.identity(x, 3)
        builder.identity(temp, x)
        builder.add(y, temp, 1)
        builder.free(temp)
        builder.sync(y)
        program = builder.build()
        propagated = CopyPropagationPass().run(program).program
        cleaned = DeadCodeEliminationPass().run(propagated).program
        # the temp copy disappears entirely
        assert all(
            temp.base not in instr.bases_written() for instr in cleaned
        )
        assert SemanticVerifier().equivalent(program, cleaned)

    def test_different_shapes_not_propagated(self):
        builder = ProgramBuilder()
        x = builder.new_vector(8)
        from repro.bytecode.view import View

        half = View(x.base, 0, (4,))
        temp = builder.new_vector(4)
        y = builder.new_vector(4)
        builder.identity(x, 3)
        builder.identity(temp, half)
        builder.add(y, temp, 1)
        builder.sync(y)
        result = CopyPropagationPass().run(builder.build())
        add = [i for i in result.program if i.opcode is OpCode.BH_ADD][0]
        # propagation happened (same shape, different base is fine) or not,
        # but semantics must hold either way
        assert SemanticVerifier().equivalent(builder.build(), result.program)


class TestDeadCodeElimination:
    def test_freed_unread_value_removed(self):
        builder = ProgramBuilder()
        v = builder.new_vector(4)
        w = builder.new_vector(4)
        builder.identity(v, 1)
        builder.identity(w, 2)   # dead: freed without ever being read
        builder.sync(v)
        builder.free(w)
        result = DeadCodeEliminationPass().run(builder.build())
        assert result.changed
        assert all(w.base not in instr.bases_written() for instr in result.program)

    def test_overwritten_value_removed(self):
        builder = ProgramBuilder()
        v = builder.new_vector(4)
        builder.identity(v, 1)   # dead: completely overwritten below
        builder.identity(v, 2)
        builder.sync(v)
        result = DeadCodeEliminationPass().run(builder.build())
        assert result.changed
        identities = [i for i in result.program if i.opcode is OpCode.BH_IDENTITY]
        assert len(identities) == 1
        assert identities[0].constant.value == 2

    def test_synced_value_kept(self):
        builder = ProgramBuilder()
        v = builder.new_vector(4)
        builder.identity(v, 1)
        builder.sync(v)
        result = DeadCodeEliminationPass().run(builder.build())
        assert not result.changed

    def test_unfreed_value_conservatively_kept(self):
        builder = ProgramBuilder()
        v = builder.new_vector(4)
        w = builder.new_vector(4)
        builder.identity(v, 1)
        builder.identity(w, 2)   # never read, never freed, never synced
        builder.sync(v)
        result = DeadCodeEliminationPass().run(builder.build())
        assert not result.changed

    def test_chain_of_dead_values_removed_iteratively(self):
        builder = ProgramBuilder()
        a = builder.new_vector(4)
        b = builder.new_vector(4)
        c = builder.new_vector(4)
        builder.identity(a, 1)
        builder.add(b, a, 1)     # b depends on a
        builder.add(c, b, 1)     # c depends on b
        builder.free(c)
        builder.free(b)
        builder.free(a)
        result = DeadCodeEliminationPass().run(builder.build())
        # everything is dead: only the frees remain
        assert result.program.num_operations() == 0

    def test_system_instructions_never_removed(self):
        builder = ProgramBuilder()
        v = builder.new_vector(4)
        builder.identity(v, 1)
        builder.sync(v)
        builder.free(v)
        result = DeadCodeEliminationPass().run(builder.build())
        assert result.program.count(OpCode.BH_SYNC) == 1
        assert result.program.count(OpCode.BH_FREE) == 1

    def test_partial_overwrite_keeps_producer(self):
        from repro.bytecode.view import View

        builder = ProgramBuilder()
        v = builder.new_vector(8)
        half = View(v.base, 0, (4,))
        builder.identity(v, 1)
        builder.identity(half, 2)
        builder.sync(v)
        result = DeadCodeEliminationPass().run(builder.build())
        assert not result.changed
