"""Tests for the constant-merge transformation (paper Listings 1-3)."""

import numpy as np
import pytest

from repro.bytecode.builder import ProgramBuilder
from repro.bytecode.dtypes import int64
from repro.bytecode.opcodes import OpCode
from repro.bytecode.operand import Constant
from repro.core.constant_merge import ConstantMergePass
from repro.core.verifier import SemanticVerifier
from repro.runtime.interpreter import NumPyInterpreter


def run_pass(program, **kwargs):
    return ConstantMergePass(**kwargs).run(program)


def listing2(repeats=3, size=10, constant=1):
    builder = ProgramBuilder()
    a0 = builder.new_vector(size)
    builder.identity(a0, 0)
    for _ in range(repeats):
        builder.add(a0, a0, constant)
    builder.sync(a0)
    return builder.build(), a0


class TestPaperListing:
    def test_three_adds_become_one(self):
        program, a0 = listing2()
        result = run_pass(program)
        assert result.changed
        assert result.program.count(OpCode.BH_ADD) == 1
        merged = [i for i in result.program if i.opcode is OpCode.BH_ADD][0]
        assert merged.constant == Constant(3)
        # program shrinks from 5 to 3 byte-codes exactly as Listing 3 shows
        assert len(result.program) == 3

    def test_values_unchanged(self):
        program, a0 = listing2(repeats=5, constant=2)
        result = run_pass(program)
        original = NumPyInterpreter().execute(program).value(a0)
        optimized = NumPyInterpreter().execute(result.program).value(a0)
        assert np.array_equal(original, optimized)
        assert np.all(optimized == 10)

    @pytest.mark.parametrize("repeats", [2, 4, 8, 32])
    def test_any_run_length_collapses_to_one(self, repeats):
        program, _ = listing2(repeats=repeats)
        result = run_pass(program)
        assert result.program.count(OpCode.BH_ADD) == 1
        assert result.stats.rewrites_applied == 1

    def test_single_add_left_alone(self):
        program, _ = listing2(repeats=1)
        result = run_pass(program)
        assert not result.changed
        assert result.program == program


class TestFamilies:
    def test_add_and_subtract_merge_signed(self):
        builder = ProgramBuilder()
        v = builder.new_vector(4)
        builder.identity(v, 10)
        builder.add(v, v, 5)
        builder.subtract(v, v, 2)
        builder.add(v, v, 1)
        builder.sync(v)
        result = run_pass(builder.build())
        merged = [i for i in result.program if i.opcode in (OpCode.BH_ADD, OpCode.BH_SUBTRACT)]
        assert len(merged) == 1
        assert merged[0].opcode is OpCode.BH_ADD
        assert merged[0].constant == Constant(4)

    def test_net_negative_on_integers_becomes_subtract(self):
        builder = ProgramBuilder(int64)
        v = builder.new_vector(4, dtype=int64)
        builder.add(v, v, 1)
        builder.subtract(v, v, 5)
        builder.sync(v)
        result = run_pass(builder.build())
        merged = [i for i in result.program if i.opcode in (OpCode.BH_ADD, OpCode.BH_SUBTRACT)][0]
        assert merged.opcode is OpCode.BH_SUBTRACT
        assert merged.constant == Constant(4, int64)

    def test_net_zero_drops_the_whole_run(self):
        builder = ProgramBuilder()
        v = builder.new_vector(4)
        builder.identity(v, 7)
        builder.add(v, v, 3)
        builder.subtract(v, v, 3)
        builder.sync(v)
        result = run_pass(builder.build())
        assert result.program.count(OpCode.BH_ADD) == 0
        assert result.program.count(OpCode.BH_SUBTRACT) == 0
        value = NumPyInterpreter().execute(result.program).value(v)
        assert np.all(value == 7)

    def test_multiplies_merge_to_product(self):
        builder = ProgramBuilder()
        v = builder.new_vector(4)
        builder.identity(v, 1)
        builder.multiply(v, v, 2)
        builder.multiply(v, v, 3)
        builder.multiply(v, v, 4)
        builder.sync(v)
        result = run_pass(builder.build())
        merged = [i for i in result.program if i.opcode is OpCode.BH_MULTIPLY]
        assert len(merged) == 1
        assert merged[0].constant == Constant(24)

    def test_multiply_divide_mix_on_floats(self):
        builder = ProgramBuilder()
        v = builder.new_vector(4)
        builder.identity(v, 8)
        builder.multiply(v, v, 6.0)
        builder.divide(v, v, 3.0)
        builder.sync(v)
        result = run_pass(builder.build())
        merged = [
            i for i in result.program if i.opcode in (OpCode.BH_MULTIPLY, OpCode.BH_DIVIDE)
        ]
        assert len(merged) == 1
        assert merged[0].opcode is OpCode.BH_MULTIPLY
        assert merged[0].constant.value == pytest.approx(2.0)

    def test_pure_divides_stay_divides(self):
        builder = ProgramBuilder()
        v = builder.new_vector(4)
        builder.identity(v, 100)
        builder.divide(v, v, 2.0)
        builder.divide(v, v, 5.0)
        builder.sync(v)
        result = run_pass(builder.build())
        merged = [
            i for i in result.program if i.opcode in (OpCode.BH_MULTIPLY, OpCode.BH_DIVIDE)
        ]
        assert len(merged) == 1
        assert merged[0].opcode is OpCode.BH_DIVIDE
        assert merged[0].constant.value == pytest.approx(10.0)

    def test_integer_division_not_merged(self):
        builder = ProgramBuilder(int64)
        v = builder.new_vector(4, dtype=int64)
        builder.identity(v, 100)
        builder.divide(v, v, 3)
        builder.divide(v, v, 7)
        builder.sync(v)
        result = run_pass(builder.build())
        # integer divisions round at each step; merging would change results
        assert result.program.count(OpCode.BH_DIVIDE) == 2

    def test_additive_and_multiplicative_runs_do_not_mix(self):
        builder = ProgramBuilder()
        v = builder.new_vector(4)
        builder.identity(v, 2)
        builder.add(v, v, 1)
        builder.multiply(v, v, 3)
        builder.add(v, v, 1)
        builder.sync(v)
        program = builder.build()
        result = run_pass(program)
        # (x + 1) * 3 + 1 has no mergeable run of length >= 2
        assert not result.changed

    def test_commutative_constant_on_the_left_is_recognised(self):
        builder = ProgramBuilder()
        v = builder.new_vector(4)
        builder.identity(v, 0)
        builder.add(v, 1, v)
        builder.add(v, 1, v)
        builder.sync(v)
        result = run_pass(builder.build())
        assert result.program.count(OpCode.BH_ADD) == 1


class TestSafety:
    def test_unrelated_instruction_in_between_is_tolerated(self):
        builder = ProgramBuilder()
        v = builder.new_vector(4)
        other = builder.new_vector(4)
        builder.identity(v, 0)
        builder.add(v, v, 1)
        builder.identity(other, 9)   # touches a different base
        builder.add(v, v, 1)
        builder.sync(v)
        result = run_pass(builder.build())
        assert result.program.count(OpCode.BH_ADD) == 1

    def test_intervening_read_blocks_the_merge(self):
        builder = ProgramBuilder()
        v = builder.new_vector(4)
        snapshot = builder.new_vector(4)
        builder.identity(v, 0)
        builder.add(v, v, 1)
        builder.identity(snapshot, v)  # observes the intermediate value
        builder.add(v, v, 1)
        builder.sync(v)
        builder.sync(snapshot)
        program = builder.build()
        result = run_pass(program)
        assert result.program.count(OpCode.BH_ADD) == 2
        verifier = SemanticVerifier()
        assert verifier.equivalent(program, result.program)

    def test_intervening_write_blocks_the_merge(self):
        builder = ProgramBuilder()
        v = builder.new_vector(4)
        builder.add(v, v, 1)
        builder.identity(v, 0)       # clobbers the accumulator
        builder.add(v, v, 1)
        builder.sync(v)
        result = run_pass(builder.build())
        assert result.program.count(OpCode.BH_ADD) == 2

    def test_intervening_sync_blocks_the_merge(self):
        builder = ProgramBuilder()
        v = builder.new_vector(4)
        builder.add(v, v, 1)
        builder.sync(v)              # the value becomes observable here
        builder.add(v, v, 1)
        result = run_pass(builder.build())
        assert result.program.count(OpCode.BH_ADD) == 2

    def test_different_views_of_same_base_do_not_merge(self):
        builder = ProgramBuilder()
        v = builder.new_vector(8)
        left = v.base
        from repro.bytecode.view import View

        first_half = View(left, 0, (4,))
        second_half = View(left, 4, (4,))
        builder.add(first_half, first_half, 1)
        builder.add(second_half, second_half, 1)
        builder.sync(v)
        result = run_pass(builder.build())
        assert result.program.count(OpCode.BH_ADD) == 2

    def test_max_window_limits_run_length(self):
        program, _ = listing2(repeats=10)
        result = run_pass(program, max_window=4)
        # 10 adds merge in windows of at most 4: 4 + 4 + 2 -> 3 adds remain
        assert result.program.count(OpCode.BH_ADD) == 3

    def test_semantics_preserved_on_random_constants(self):
        rng = np.random.default_rng(3)
        builder = ProgramBuilder()
        v = builder.new_vector(16)
        builder.identity(v, 1.5)
        constants = rng.uniform(-2, 2, size=10)
        for constant in constants:
            builder.add(v, v, float(constant))
        builder.sync(v)
        program = builder.build()
        result = run_pass(program)
        assert result.program.count(OpCode.BH_ADD) == 1
        assert SemanticVerifier().equivalent(program, result.program)
