"""Tests for the extension passes: constant folding, strength reduction, CSE.

These passes go beyond the paper's concrete listings (they are the "further
study of real examples" direction its conclusion sketches) and are therefore
kept out of the default pipeline; ``default_pipeline(extended=True)`` or the
pass names enable them.
"""

import numpy as np
import pytest

from repro.bytecode.builder import ProgramBuilder
from repro.bytecode.opcodes import OpCode
from repro.bytecode.operand import Constant
from repro.core.constant_fold import ScalarConstantFoldingPass
from repro.core.cse import CommonSubexpressionEliminationPass
from repro.core.pipeline import default_pipeline, optimize
from repro.core.rules import DEFAULT_PASS_ORDER, EXTENDED_PASS_ORDER, available_passes
from repro.core.strength_reduction import StrengthReductionPass
from repro.core.verifier import SemanticVerifier
from repro.runtime.interpreter import NumPyInterpreter


class TestScalarConstantFolding:
    def test_identity_then_updates_fold_to_one_identity(self):
        builder = ProgramBuilder()
        v = builder.new_vector(8)
        builder.identity(v, 2)
        builder.add(v, v, 3)
        builder.multiply(v, v, 2)
        builder.sync(v)
        program = builder.build()
        result = ScalarConstantFoldingPass().run(program)
        assert result.changed
        identities = [i for i in result.program if i.opcode is OpCode.BH_IDENTITY]
        assert len(identities) == 1
        assert identities[0].constant.value == 10
        assert result.program.num_operations() == 1
        assert SemanticVerifier().equivalent(program, result.program)

    def test_unary_updates_fold_too(self):
        builder = ProgramBuilder()
        v = builder.new_vector(4)
        builder.identity(v, 9)
        builder.sqrt(v, v)
        builder.negative(v, v)
        builder.sync(v)
        result = ScalarConstantFoldingPass().run(builder.build())
        folded = [i for i in result.program if i.opcode is OpCode.BH_IDENTITY][0]
        assert folded.constant.value == -3.0

    def test_constant_on_the_left_of_subtract(self):
        builder = ProgramBuilder()
        v = builder.new_vector(4)
        builder.identity(v, 4)
        builder.subtract(v, 10, v)   # v = 10 - v
        builder.sync(v)
        result = ScalarConstantFoldingPass().run(builder.build())
        folded = [i for i in result.program if i.opcode is OpCode.BH_IDENTITY][0]
        assert folded.constant.value == 6

    def test_view_operand_stops_the_fold(self):
        builder = ProgramBuilder()
        v = builder.new_vector(4)
        other = builder.new_vector(4)
        builder.identity(v, 2)
        builder.add(v, v, other)     # not a constant update
        builder.add(v, v, 1)
        builder.sync(v)
        result = ScalarConstantFoldingPass().run(builder.build())
        assert not result.changed

    def test_interfering_read_stops_the_fold(self):
        builder = ProgramBuilder()
        v = builder.new_vector(4)
        snapshot = builder.new_vector(4)
        builder.identity(v, 1)
        builder.identity(snapshot, v)   # observes the intermediate value
        builder.add(v, v, 1)
        builder.sync(v)
        builder.sync(snapshot)
        program = builder.build()
        result = ScalarConstantFoldingPass().run(program)
        assert not result.changed
        assert SemanticVerifier().equivalent(program, result.program)

    def test_division_by_zero_is_not_folded(self):
        builder = ProgramBuilder()
        v = builder.new_vector(4)
        builder.identity(v, 1.0)
        builder.divide(v, v, 0.0)
        builder.sync(v)
        result = ScalarConstantFoldingPass().run(builder.build())
        assert not result.changed

    def test_default_pipeline_keeps_listing_3_shape(self):
        # The default (paper-faithful) pipeline must keep IDENTITY 0 + ADD 3,
        # not fold everything to IDENTITY 3; the extended pipeline may fold.
        builder = ProgramBuilder()
        v = builder.new_vector(8)
        builder.identity(v, 0)
        for _ in range(3):
            builder.add(v, v, 1)
        builder.sync(v)
        program = builder.build()
        default_report = optimize(program)
        assert default_report.optimized.count(OpCode.BH_ADD, include_fused=True) == 1
        extended_report = optimize(program, extended=True)
        assert extended_report.optimized.count(OpCode.BH_ADD, include_fused=True) == 0
        assert SemanticVerifier().equivalent(program, extended_report.optimized)


class TestStrengthReduction:
    def test_division_by_constant_becomes_multiplication(self):
        builder = ProgramBuilder()
        x = builder.new_vector(8)
        y = builder.new_vector(8)
        builder.divide(y, x, 4.0)
        builder.sync(y)
        program = builder.build()
        result = StrengthReductionPass().run(program)
        assert result.changed
        multiply = [i for i in result.program if i.opcode is OpCode.BH_MULTIPLY][0]
        assert multiply.constant.value == pytest.approx(0.25)
        assert SemanticVerifier().equivalent(program, result.program)

    def test_integer_division_untouched(self):
        from repro.bytecode.dtypes import int64

        builder = ProgramBuilder(int64)
        x = builder.new_vector(8, dtype=int64)
        y = builder.new_vector(8, dtype=int64)
        builder.divide(y, x, 4)
        builder.sync(y)
        result = StrengthReductionPass().run(builder.build())
        assert not result.changed

    def test_square_root_exponent(self):
        builder = ProgramBuilder()
        x = builder.new_vector(8)
        y = builder.new_vector(8)
        builder.power(y, x, 0.5)
        builder.sync(y)
        program = builder.build()
        result = StrengthReductionPass().run(program)
        assert result.program.count(OpCode.BH_SQRT) == 1
        assert result.program.count(OpCode.BH_POWER) == 0

    def test_reciprocal_exponent(self):
        builder = ProgramBuilder()
        x = builder.new_vector(8)
        y = builder.new_vector(8)
        builder.power(y, x, -1)
        builder.sync(y)
        result = StrengthReductionPass().run(builder.build())
        assert result.program.count(OpCode.BH_RECIPROCAL) == 1

    def test_square_becomes_self_multiplication(self):
        builder = ProgramBuilder()
        x = builder.new_vector(8)
        y = builder.new_vector(8)
        builder.power(y, x, 2)
        builder.sync(y)
        result = StrengthReductionPass().run(builder.build())
        multiply = [i for i in result.program if i.opcode is OpCode.BH_MULTIPLY][0]
        assert multiply.input_views[0].same_view(multiply.input_views[1])

    def test_division_by_zero_untouched(self):
        builder = ProgramBuilder()
        x = builder.new_vector(4)
        y = builder.new_vector(4)
        builder.divide(y, x, 0.0)
        builder.sync(y)
        assert not StrengthReductionPass().run(builder.build()).changed

    def test_semantics_preserved_on_mixed_program(self):
        builder = ProgramBuilder()
        x = builder.new_vector(16)
        y = builder.new_vector(16)
        z = builder.new_vector(16)
        builder.identity(x, 3.0)
        builder.divide(y, x, 8.0)
        builder.power(z, y, 0.5)
        builder.sync(z)
        program = builder.build()
        result = StrengthReductionPass().run(program)
        assert SemanticVerifier().equivalent(program, result.program)


class TestCommonSubexpressionElimination:
    def test_repeated_computation_becomes_copy(self):
        builder = ProgramBuilder()
        x = builder.new_vector(8)
        first = builder.new_vector(8)
        second = builder.new_vector(8)
        builder.identity(x, 2)
        builder.multiply(first, x, 3)
        builder.multiply(second, x, 3)   # identical computation
        builder.sync(first)
        builder.sync(second)
        program = builder.build()
        result = CommonSubexpressionEliminationPass().run(program)
        assert result.changed
        assert result.program.count(OpCode.BH_MULTIPLY) == 1
        assert result.program.count(OpCode.BH_IDENTITY) == 2  # x init + the copy
        assert SemanticVerifier().equivalent(program, result.program)

    def test_modified_input_blocks_reuse(self):
        builder = ProgramBuilder()
        x = builder.new_vector(8)
        first = builder.new_vector(8)
        second = builder.new_vector(8)
        builder.identity(x, 2)
        builder.multiply(first, x, 3)
        builder.add(x, x, 1)             # x changes in between
        builder.multiply(second, x, 3)
        builder.sync(first)
        builder.sync(second)
        program = builder.build()
        result = CommonSubexpressionEliminationPass().run(program)
        assert not result.changed

    def test_clobbered_result_blocks_reuse(self):
        builder = ProgramBuilder()
        x = builder.new_vector(8)
        first = builder.new_vector(8)
        second = builder.new_vector(8)
        builder.identity(x, 2)
        builder.multiply(first, x, 3)
        builder.identity(first, 0)       # cached value destroyed
        builder.multiply(second, x, 3)
        builder.sync(second)
        result = CommonSubexpressionEliminationPass().run(builder.build())
        assert not result.changed

    def test_in_place_updates_are_not_treated_as_cse(self):
        builder = ProgramBuilder()
        v = builder.new_vector(8)
        builder.identity(v, 1)
        builder.add(v, v, 1)
        builder.add(v, v, 1)             # same text, but accumulates
        builder.sync(v)
        program = builder.build()
        result = CommonSubexpressionEliminationPass().run(program)
        assert not result.changed

    def test_different_constants_not_merged(self):
        builder = ProgramBuilder()
        x = builder.new_vector(8)
        first = builder.new_vector(8)
        second = builder.new_vector(8)
        builder.multiply(first, x, 3)
        builder.multiply(second, x, 4)
        builder.sync(first)
        builder.sync(second)
        assert not CommonSubexpressionEliminationPass().run(builder.build()).changed

    def test_cse_then_cleanup_removes_redundant_work_entirely(self):
        builder = ProgramBuilder()
        x = builder.new_vector(8)
        first = builder.new_vector(8)
        second = builder.new_vector(8)
        total = builder.new_vector(8)
        builder.identity(x, 2)
        builder.sqrt(first, x)
        builder.sqrt(second, x)
        builder.add(total, first, second)
        builder.sync(total)
        builder.free(first)
        builder.free(second)
        program = builder.build()
        report = optimize(program, extended=True)
        assert report.optimized.count(OpCode.BH_SQRT, include_fused=True) == 1
        assert SemanticVerifier().equivalent(program, report.optimized)

    def test_frontend_duplicate_expression(self):
        from repro import frontend as bh
        from repro.frontend.session import reset_session

        pipeline = default_pipeline(extended=True)
        session = reset_session(backend="interpreter", optimize=True, pipeline=pipeline)
        data = bh.array([1.0, 4.0, 9.0, 16.0])
        first = bh.sqrt(data) + 1.0
        second = bh.sqrt(data) + 2.0
        total = first + second
        values = total.to_numpy()
        report = session.last_report
        assert report.optimized.count(OpCode.BH_SQRT, include_fused=True) == 1
        assert np.allclose(values, 2 * np.sqrt([1.0, 4.0, 9.0, 16.0]) + 3.0)


class TestRegistryAndPipelineIntegration:
    def test_new_passes_registered(self):
        assert {"constant_fold", "strength_reduction", "cse"} <= set(available_passes())

    def test_default_order_unchanged(self):
        assert "cse" not in DEFAULT_PASS_ORDER
        assert "cse" in EXTENDED_PASS_ORDER
        assert set(DEFAULT_PASS_ORDER) < set(EXTENDED_PASS_ORDER)

    def test_extended_pipeline_contains_all_passes(self):
        pipeline = default_pipeline(extended=True)
        assert pipeline.pass_names() == list(EXTENDED_PASS_ORDER)

    def test_extended_pipeline_still_preserves_semantics_on_random_programs(self):
        from repro.workloads import random_elementwise_program

        verifier = SemanticVerifier(rtol=1e-5, atol=1e-6)
        for seed in range(6):
            program, _ = random_elementwise_program(seed, num_instructions=10)
            report = optimize(program, extended=True)
            verifier.check(program, report.optimized)
