"""Tests for the fusion pass and the rewrite-gating cost model."""

import numpy as np
import pytest

from repro.bytecode.builder import ProgramBuilder
from repro.bytecode.opcodes import OpCode
from repro.core.cost import CostModel
from repro.core.fusion import FusionPass
from repro.core.pipeline import optimize
from repro.core.verifier import SemanticVerifier
from repro.runtime.interpreter import NumPyInterpreter
from repro.runtime.simulator import DEVICE_PROFILES
from repro.utils.errors import CostModelError
from repro.workloads import elementwise_chain, repeated_constant_add


class TestFusionPass:
    def test_chain_fused_into_single_kernel(self):
        program, out = elementwise_chain(64, length=6)
        result = FusionPass().run(program)
        assert result.changed
        fused = [i for i in result.program if i.opcode is OpCode.BH_FUSED]
        assert len(fused) == 1
        assert len(fused[0].kernel) == 7  # identity + 6 chain ops
        assert result.program.num_kernels() == 1

    def test_fused_program_computes_same_values(self):
        program, out = elementwise_chain(64, length=10)
        result = FusionPass().run(program)
        expected = NumPyInterpreter().execute(program).value(out)
        actual = NumPyInterpreter().execute(result.program).value(out)
        assert np.allclose(expected, actual)

    def test_short_chains_not_fused(self):
        builder = ProgramBuilder()
        v = builder.new_vector(8)
        total = builder.new_vector(1)
        builder.identity(v, 1)
        builder.add_reduce(total, v, axis=0)
        builder.sync(total)
        result = FusionPass(min_kernel_size=2).run(builder.build())
        assert not result.changed

    def test_max_kernel_size_creates_multiple_kernels(self):
        program, _ = elementwise_chain(32, length=9)  # 10 element-wise byte-codes
        result = FusionPass(max_kernel_size=4).run(program)
        fused = [i for i in result.program if i.opcode is OpCode.BH_FUSED]
        assert [len(f.kernel) for f in fused] == [4, 4, 2]

    def test_reduction_cuts_fusion(self):
        builder = ProgramBuilder()
        v = builder.new_vector(16)
        total = builder.new_vector(1)
        builder.identity(v, 1)
        builder.add(v, v, 1)
        builder.add_reduce(total, v, axis=0)
        builder.add(v, v, 1)
        builder.multiply(v, v, 2)
        builder.sync(v)
        result = FusionPass().run(builder.build())
        fused = [i for i in result.program if i.opcode is OpCode.BH_FUSED]
        assert [len(f.kernel) for f in fused] == [2, 2]
        assert result.program.count(OpCode.BH_ADD_REDUCE) == 1

    def test_fusion_preserves_semantics_of_merged_program(self):
        program, out = repeated_constant_add(32, repeats=5)
        optimized = optimize(program).optimized
        assert SemanticVerifier().equivalent(program, optimized)


class TestCostModel:
    def test_program_cost_decreases_with_optimization(self):
        program, _ = repeated_constant_add(100_000, repeats=8)
        optimized = optimize(program).optimized
        model = CostModel("gpu")
        assert model.program_cost(optimized) < model.program_cost(program)
        assert model.is_improvement(program, optimized)
        assert model.speedup(program, optimized) > 2.0

    def test_breakdown_fields(self):
        program, _ = repeated_constant_add(1000, repeats=3)
        breakdown = CostModel("gpu").breakdown(program)
        assert breakdown.kernel_launches == 4
        assert breakdown.flops == pytest.approx(3000.0)
        assert breakdown.bytes_moved > 0
        assert breakdown.seconds > 0
        assert set(breakdown.as_dict()) == {"kernel_launches", "flops", "bytes_moved", "seconds"}

    def test_instruction_cost_includes_launch_overhead(self):
        program, _ = repeated_constant_add(8, repeats=1)
        model = CostModel("gpu")
        assert model.instruction_cost(program[1]) >= DEVICE_PROFILES["gpu"].kernel_launch_overhead_s

    def test_system_instructions_cost_nothing(self):
        program, _ = repeated_constant_add(8, repeats=1)
        sync = program[-1]
        assert CostModel("gpu").instruction_cost(sync) == 0.0

    def test_profiles_rank_devices_sensibly(self):
        program, _ = repeated_constant_add(1_000_000, repeats=4)
        gpu = CostModel("gpu").program_cost(program)
        single = CostModel("single_core").program_cost(program)
        assert gpu < single

    def test_custom_profile_accepted(self):
        from repro.runtime.simulator import DeviceProfile

        profile = DeviceProfile("laptop", 1e-6, 1e10, 1e10)
        model = CostModel(profile)
        program, _ = repeated_constant_add(100, repeats=1)
        assert model.program_cost(program) > 0

    def test_unknown_profile_rejected(self):
        with pytest.raises(CostModelError):
            CostModel("abacus")

    def test_power_to_multiply_crossover_shape(self):
        """The paper's Section 4 claim: near powers of two, multiplies win."""
        from repro.core.power_expansion import PowerExpansionPass
        from repro.workloads import power_program

        model = CostModel("gpu")
        speedups = {}
        for exponent in (8, 11):
            program, _, _ = power_program(100_000, exponent)
            expanded = PowerExpansionPass(strategy="power_of_two").run(program).program
            speedups[exponent] = model.program_cost(program) / model.program_cost(expanded)
        # an exact power of two needs only log2(n) multiplies and should show
        # a better predicted speedup than a "ragged" exponent like 11
        assert speedups[8] > speedups[11]
