"""Tests for the context-aware linear-solve rewrite (paper Equation 2)."""

import numpy as np
import pytest

from repro.bytecode.builder import ProgramBuilder
from repro.bytecode.opcodes import OpCode
from repro.core.dce import DeadCodeEliminationPass
from repro.core.linear_solve import LinearSolveRewritePass
from repro.core.pipeline import optimize
from repro.linalg.util import random_well_conditioned
from repro.runtime.interpreter import NumPyInterpreter
from repro.runtime.memory import MemoryManager
from repro.workloads import linear_solve_program


def run_pass(program):
    return LinearSolveRewritePass().run(program)


class TestRewriteFires:
    def test_idiom_rewritten_to_lu_solve(self):
        program, solution, memory = linear_solve_program(16)
        result = run_pass(program)
        assert result.changed
        assert result.program.count(OpCode.BH_MATRIX_INVERSE) == 0
        assert result.program.count(OpCode.BH_MATMUL) == 0
        assert result.program.count(OpCode.BH_LU_SOLVE) == 1

    def test_solution_matches_numpy(self):
        program, solution, memory = linear_solve_program(24, seed=5)
        result = run_pass(program)
        matrix_view = program[0].input_views[0]
        rhs_view = program[1].input_views[1]
        matrix = memory.read_view(matrix_view)
        rhs = memory.read_view(rhs_view)
        values = NumPyInterpreter().execute(result.program, memory).value(solution)
        assert np.allclose(values, np.linalg.solve(matrix, rhs))

    def test_rewritten_and_original_agree(self):
        program, solution, memory = linear_solve_program(20, seed=9)
        result = run_pass(program)
        original = NumPyInterpreter().execute(program, memory.clone()).value(solution)
        optimized = NumPyInterpreter().execute(result.program, memory.clone()).value(solution)
        assert np.allclose(original, optimized)

    def test_unrelated_instructions_between_idiom_are_kept(self):
        builder = ProgramBuilder()
        n = 8
        a = builder.new_matrix(n, n)
        b = builder.new_vector(n)
        inv = builder.new_matrix(n, n)
        x = builder.new_vector(n)
        other = builder.new_vector(n)
        builder.matrix_inverse(inv, a)
        builder.identity(other, 42)      # unrelated, sits inside the idiom
        builder.matmul(x, inv, b)
        builder.sync(x)
        builder.sync(other)
        builder.free(inv)
        result = run_pass(builder.build())
        assert result.changed
        assert result.program.count(OpCode.BH_LU_SOLVE) == 1
        assert result.program.count(OpCode.BH_IDENTITY) == 1

    def test_two_independent_idioms_both_rewritten(self):
        builder = ProgramBuilder()
        n = 6
        for _ in range(2):
            a = builder.new_matrix(n, n)
            b = builder.new_vector(n)
            inv = builder.new_matrix(n, n)
            x = builder.new_vector(n)
            builder.matrix_inverse(inv, a)
            builder.matmul(x, inv, b)
            builder.sync(x)
            builder.free(inv)
        result = run_pass(builder.build())
        assert result.stats.rewrites_applied == 2
        assert result.program.count(OpCode.BH_LU_SOLVE) == 2

    def test_matrix_right_hand_side_supported(self):
        builder = ProgramBuilder()
        n, k = 8, 3
        a = builder.new_matrix(n, n)
        b = builder.new_matrix(n, k)
        inv = builder.new_matrix(n, n)
        x = builder.new_matrix(n, k)
        builder.matrix_inverse(inv, a)
        builder.matmul(x, inv, b)
        builder.sync(x)
        builder.free(inv)
        program = builder.build()
        result = run_pass(program)
        assert result.changed
        memory = MemoryManager()
        memory.set_data(a.base, random_well_conditioned(n, seed=2))
        memory.set_data(b.base, np.random.default_rng(2).standard_normal((n, k)))
        original = NumPyInterpreter().execute(program, memory.clone()).value(x)
        optimized = NumPyInterpreter().execute(result.program, memory.clone()).value(x)
        assert np.allclose(original, optimized)


class TestRewriteRefused:
    def test_reused_inverse_blocks_rewrite(self):
        program, solution, memory = linear_solve_program(16, reuse_inverse=True)
        result = run_pass(program)
        assert not result.changed
        assert result.program.count(OpCode.BH_MATRIX_INVERSE) == 1

    def test_synced_inverse_blocks_rewrite(self):
        builder = ProgramBuilder()
        n = 8
        a = builder.new_matrix(n, n)
        b = builder.new_vector(n)
        inv = builder.new_matrix(n, n)
        x = builder.new_vector(n)
        builder.matrix_inverse(inv, a)
        builder.matmul(x, inv, b)
        builder.sync(inv)                # the inverse itself is an output
        builder.sync(x)
        result = run_pass(builder.build())
        assert not result.changed

    def test_unfreed_inverse_blocks_rewrite(self):
        # Without a BH_FREE (or later overwrite) the front-end may still
        # observe the inverse in a later flush, so the rewrite must not fire.
        builder = ProgramBuilder()
        n = 8
        a = builder.new_matrix(n, n)
        b = builder.new_vector(n)
        inv = builder.new_matrix(n, n)
        x = builder.new_vector(n)
        builder.matrix_inverse(inv, a)
        builder.matmul(x, inv, b)
        builder.sync(x)
        result = run_pass(builder.build())
        assert not result.changed

    def test_matrix_modified_between_inverse_and_matmul_blocks_rewrite(self):
        builder = ProgramBuilder()
        n = 8
        a = builder.new_matrix(n, n)
        b = builder.new_vector(n)
        inv = builder.new_matrix(n, n)
        x = builder.new_vector(n)
        builder.matrix_inverse(inv, a)
        builder.identity(a, 0)           # A changes after being inverted
        builder.matmul(x, inv, b)
        builder.sync(x)
        builder.free(inv)
        result = run_pass(builder.build())
        assert not result.changed

    def test_rhs_modified_between_inverse_and_matmul_blocks_rewrite(self):
        builder = ProgramBuilder()
        n = 8
        a = builder.new_matrix(n, n)
        b = builder.new_vector(n)
        inv = builder.new_matrix(n, n)
        x = builder.new_vector(n)
        builder.matrix_inverse(inv, a)
        builder.add(b, b, 1)             # b changes before the product
        builder.matmul(x, inv, b)
        builder.sync(x)
        builder.free(inv)
        # NOTE: changing b *before* the product is actually fine for the
        # naive path, but the fused LU_SOLVE reads b at the same point the
        # matmul did, so the rewrite is still legal; what must block it is a
        # change to A.  The pass is conservative and refuses both.
        result = run_pass(builder.build())
        assert not result.changed

    def test_matmul_with_unrelated_matrix_not_rewritten(self):
        builder = ProgramBuilder()
        n = 8
        a = builder.new_matrix(n, n)
        c = builder.new_matrix(n, n)
        b = builder.new_vector(n)
        inv = builder.new_matrix(n, n)
        x = builder.new_vector(n)
        builder.matrix_inverse(inv, a)
        builder.matmul(x, c, b)          # multiplies a *different* matrix
        builder.sync(x)
        builder.free(inv)
        result = run_pass(builder.build())
        assert not result.changed


class TestWithinFullPipeline:
    def test_full_pipeline_applies_rewrite_and_removes_inverse(self):
        program, solution, memory = linear_solve_program(12)
        report = optimize(program)
        assert report.optimized.count(OpCode.BH_LU_SOLVE) == 1
        assert report.optimized.count(OpCode.BH_MATRIX_INVERSE) == 0

    def test_full_pipeline_respects_reuse(self):
        program, solution, memory = linear_solve_program(12, reuse_inverse=True)
        report = optimize(program)
        assert report.optimized.count(OpCode.BH_LU_SOLVE) == 0
        assert report.optimized.count(OpCode.BH_MATRIX_INVERSE) == 1
