"""Tests for the declarative instruction-pattern matcher."""

import pytest

from repro.bytecode.builder import ProgramBuilder
from repro.bytecode.opcodes import OpCode
from repro.core.pattern import (
    Any,
    Capture,
    InstructionPattern,
    IsConstant,
    IsView,
    MatchResult,
    SequencePattern,
)


def accumulate_program():
    builder = ProgramBuilder()
    a = builder.new_vector(8)
    b = builder.new_vector(8)
    builder.identity(a, 0)
    builder.add(a, a, 1)
    builder.add(b, a, 2)
    builder.add(a, a, 3)
    builder.sync(a)
    return builder.build(), a, b


class TestInstructionPattern:
    def test_opcode_filter(self):
        program, a, b = accumulate_program()
        pattern = InstructionPattern(opcodes=(OpCode.BH_ADD,))
        assert pattern.matches(program[1]) is not None
        assert pattern.matches(program[0]) is None

    def test_output_capture(self):
        program, a, b = accumulate_program()
        pattern = InstructionPattern(opcodes=(OpCode.BH_ADD,), output="out")
        result = pattern.matches(program[2])
        assert result.view("out").same_view(b)

    def test_input_constraints(self):
        program, a, b = accumulate_program()
        accumulating = InstructionPattern(
            opcodes=(OpCode.BH_ADD,),
            output="acc",
            inputs=(Capture("acc"), IsConstant("delta")),
        )
        # add a, a, 1 accumulates in place: matches.
        match = accumulating.matches(program[1])
        assert match is not None
        assert match.constant("delta").value == 1
        # add b, a, 2 writes elsewhere: the same-view constraint fails.
        assert accumulating.matches(program[2]) is None

    def test_constant_predicate(self):
        program, a, b = accumulate_program()
        big_constant = InstructionPattern(
            opcodes=(OpCode.BH_ADD,),
            inputs=(IsView(), IsConstant(predicate=lambda c: c.value >= 3)),
        )
        assert big_constant.matches(program[1]) is None
        assert big_constant.matches(program[3]) is not None

    def test_arity_mismatch_fails(self):
        program, a, b = accumulate_program()
        pattern = InstructionPattern(opcodes=(OpCode.BH_ADD,), inputs=(IsView(),))
        assert pattern.matches(program[1]) is None

    def test_instruction_predicate(self):
        program, a, b = accumulate_program()
        tagged = InstructionPattern(
            opcodes=(OpCode.BH_IDENTITY,), predicate=lambda instr: instr.constant is not None
        )
        assert tagged.matches(program[0]) is not None

    def test_failed_match_does_not_pollute_captures(self):
        program, a, b = accumulate_program()
        pattern = InstructionPattern(
            opcodes=(OpCode.BH_ADD,),
            output="x",
            inputs=(Capture("x"), Capture("x")),  # impossible: constant != view
        )
        result = MatchResult()
        assert pattern.matches(program[1], result) is None
        assert result.captures == {}


class TestSequencePattern:
    def test_consecutive_match(self):
        program, a, b = accumulate_program()
        sequence = SequencePattern(
            steps=(
                InstructionPattern(opcodes=(OpCode.BH_IDENTITY,), output="acc"),
                InstructionPattern(
                    opcodes=(OpCode.BH_ADD,), output=Capture("acc"), inputs=None
                ),
            )
        )
        result = sequence.match_at(program, 0)
        assert result is not None
        assert result.indices == [0, 1]

    def test_gap_tolerant_match(self):
        program, a, b = accumulate_program()
        sequence = SequencePattern(
            steps=(
                InstructionPattern(
                    opcodes=(OpCode.BH_ADD,),
                    output="acc",
                    inputs=(Capture("acc"), IsConstant("first")),
                ),
                InstructionPattern(
                    opcodes=(OpCode.BH_ADD,),
                    output=Capture("acc"),
                    inputs=(Capture("acc"), IsConstant("second")),
                ),
            ),
            allow_gaps=True,
        )
        # add a,a,1 (index 1) ... gap: add b,a,2 ... add a,a,3 (index 3)
        result = sequence.match_at(program, 1)
        assert result is not None
        assert result.indices == [1, 3]
        assert result.constant("first").value == 1
        assert result.constant("second").value == 3

    def test_no_gaps_blocks_interleaved_match(self):
        program, a, b = accumulate_program()
        sequence = SequencePattern(
            steps=(
                InstructionPattern(
                    opcodes=(OpCode.BH_ADD,),
                    output="acc",
                    inputs=(Capture("acc"), IsConstant()),
                ),
                InstructionPattern(
                    opcodes=(OpCode.BH_ADD,),
                    output=Capture("acc"),
                    inputs=(Capture("acc"), IsConstant()),
                ),
            ),
            allow_gaps=False,
        )
        assert sequence.match_at(program, 1) is None

    def test_gap_filter_can_reject(self):
        program, a, b = accumulate_program()
        sequence = SequencePattern(
            steps=(
                InstructionPattern(opcodes=(OpCode.BH_ADD,), output="acc"),
                InstructionPattern(opcodes=(OpCode.BH_ADD,), output=Capture("acc")),
            ),
            allow_gaps=True,
            gap_filter=lambda instr: instr.opcode is not OpCode.BH_ADD or True,
        )
        assert sequence.match_at(program, 1) is not None

    def test_find_all_non_overlapping(self):
        builder = ProgramBuilder()
        v = builder.new_vector(4)
        for _ in range(4):
            builder.add(v, v, 1)
        program = builder.build()
        pair = SequencePattern(
            steps=(
                InstructionPattern(opcodes=(OpCode.BH_ADD,), output="acc"),
                InstructionPattern(opcodes=(OpCode.BH_ADD,), output=Capture("acc")),
            )
        )
        matches = pair.find_all(program)
        assert len(matches) == 2
        assert matches[0].indices == [0, 1]
        assert matches[1].indices == [2, 3]
