"""Tests for the power-expansion pass (paper Equation 1, Listings 4-5)."""

import numpy as np
import pytest

from repro.bytecode.builder import ProgramBuilder
from repro.bytecode.instruction import Instruction
from repro.bytecode.opcodes import OpCode
from repro.bytecode.program import Program
from repro.core.cost import CostModel
from repro.core.power_expansion import PowerExpansionPass, expand_power
from repro.core.verifier import SemanticVerifier
from repro.runtime.interpreter import NumPyInterpreter
from repro.runtime.memory import MemoryManager
from repro.workloads import power_program


def power_instruction(size=8, exponent=10, in_place=False):
    builder = ProgramBuilder()
    x = builder.new_vector(size)
    y = x if in_place else builder.new_vector(size)
    builder.power(y, x, exponent)
    program = builder.build()
    return program[0], x, y


class TestExpandPower:
    def test_listing_5_shape_for_ten(self):
        instruction, x, y = power_instruction(exponent=10)
        replacement = expand_power(instruction, strategy="power_of_two")
        assert len(replacement) == 5
        assert all(instr.opcode is OpCode.BH_MULTIPLY for instr in replacement)
        # first multiply squares the origin tensor into the result tensor
        assert replacement[0].input_views == (x, x)
        # and the last two multiply the result tensor by the origin again
        assert replacement[-1].input_views[0].same_view(y)
        assert replacement[-1].input_views[1].same_view(x)

    def test_listing_4_shape_for_ten(self):
        instruction, x, y = power_instruction(exponent=10)
        replacement = expand_power(instruction, strategy="naive")
        assert len(replacement) == 9
        assert all(instr.opcode is OpCode.BH_MULTIPLY for instr in replacement)

    def test_only_origin_and_result_registers_are_used(self):
        instruction, x, y = power_instruction(exponent=27)
        replacement = expand_power(instruction, strategy="binary")
        bases = {view.base for instr in replacement for view in instr.views()}
        assert bases == {x.base, y.base}

    @pytest.mark.parametrize("strategy", ["naive", "power_of_two", "binary"])
    @pytest.mark.parametrize("exponent", [2, 3, 5, 8, 10, 13, 31])
    def test_numerical_equivalence(self, strategy, exponent):
        program, out, memory = power_program(32, exponent)
        expanded = Program(
            expand_power(program[0], strategy=strategy) + [program[1]]
        )
        expected = NumPyInterpreter().execute(program, memory.clone()).value(out)
        actual = NumPyInterpreter().execute(expanded, memory.clone()).value(out)
        assert np.allclose(expected, actual, rtol=1e-10)

    def test_exponent_zero_becomes_one(self):
        instruction, x, y = power_instruction(exponent=0)
        replacement = expand_power(instruction)
        assert len(replacement) == 1
        assert replacement[0].opcode is OpCode.BH_IDENTITY
        assert replacement[0].constant.value == 1

    def test_exponent_one_becomes_copy(self):
        instruction, x, y = power_instruction(exponent=1)
        replacement = expand_power(instruction)
        assert len(replacement) == 1
        assert replacement[0].opcode is OpCode.BH_IDENTITY

    def test_in_place_power_of_two_is_expandable(self):
        instruction, x, y = power_instruction(exponent=8, in_place=True)
        replacement = expand_power(instruction)
        assert replacement is not None
        assert len(replacement) == 3

    def test_in_place_non_power_of_two_is_refused(self):
        instruction, x, y = power_instruction(exponent=10, in_place=True)
        assert expand_power(instruction) is None

    def test_non_constant_exponent_is_refused(self):
        builder = ProgramBuilder()
        x = builder.new_vector(4)
        e = builder.new_vector(4)
        y = builder.new_vector(4)
        builder.power(y, x, e)
        assert expand_power(builder.build()[0]) is None

    def test_fractional_and_negative_exponents_refused(self):
        for exponent in (2.5, -3):
            instruction, _, _ = power_instruction(exponent=exponent)
            assert expand_power(instruction) is None

    def test_integer_valued_float_exponent_is_expanded(self):
        instruction, _, _ = power_instruction(exponent=4.0)
        assert len(expand_power(instruction)) == 2

    def test_non_power_instruction_returns_none(self):
        builder = ProgramBuilder()
        v = builder.new_vector(4)
        builder.add(v, v, 1)
        assert expand_power(builder.build()[0]) is None

    def test_optimal_chain_with_temporaries(self):
        instruction, x, y = power_instruction(exponent=15)
        replacement = expand_power(instruction, strategy="optimal", allow_temporaries=True)
        multiplies = [i for i in replacement if i.opcode is OpCode.BH_MULTIPLY]
        frees = [i for i in replacement if i.opcode is OpCode.BH_FREE]
        assert len(multiplies) == 5  # optimal chain for 15
        assert frees, "temporaries must be freed"
        # numerically correct as well
        program, out, memory = power_program(16, 15)
        expanded = Program(
            expand_power(program[0], strategy="optimal", allow_temporaries=True) + [program[1]]
        )
        expected = NumPyInterpreter().execute(program, memory.clone()).value(out)
        actual = NumPyInterpreter().execute(expanded, memory.clone()).value(out)
        assert np.allclose(expected, actual, rtol=1e-10)

    def test_optimal_chain_without_temporaries_falls_back_to_refusal(self):
        instruction, _, _ = power_instruction(exponent=15)
        assert expand_power(instruction, strategy="optimal", allow_temporaries=False) is None

    def test_constant_base_is_folded(self):
        builder = ProgramBuilder()
        y = builder.new_vector(4)
        builder.power(y, 2, 10)
        replacement = expand_power(builder.build()[0])
        assert len(replacement) == 1
        assert replacement[0].opcode is OpCode.BH_IDENTITY
        assert replacement[0].constant.value == 1024


class TestPowerExpansionPass:
    def test_pass_replaces_power(self):
        program, out, memory = power_program(16, 10)
        result = PowerExpansionPass(strategy="power_of_two").run(program)
        assert result.changed
        assert result.program.count(OpCode.BH_POWER) == 0
        assert result.program.count(OpCode.BH_MULTIPLY) == 5

    def test_limit_gates_expansion(self):
        program, _, _ = power_program(16, 40)
        result = PowerExpansionPass(limit=32).run(program)
        assert not result.changed
        assert result.program.count(OpCode.BH_POWER) == 1

    def test_default_limit_comes_from_config(self):
        from repro.utils.config import config_override

        program, _, _ = power_program(16, 40)
        with config_override(power_expansion_limit=8):
            result = PowerExpansionPass().run(program)
        assert not result.changed

    def test_cost_model_can_refuse_expansion(self):
        # On a memory-bound device with enormous launch cost relative to
        # compute, many multiplies are worse than one pow kernel.
        from repro.runtime.simulator import DeviceProfile

        expensive_launch = DeviceProfile(
            name="expensive-launch",
            kernel_launch_overhead_s=1.0,
            flops_per_second=1e15,
            bytes_per_second=1e15,
        )
        program, _, _ = power_program(16, 10)
        gated = PowerExpansionPass(cost_model=CostModel(expensive_launch)).run(program)
        assert not gated.changed
        ungated = PowerExpansionPass().run(program)
        assert ungated.changed

    def test_cost_model_allows_profitable_expansion(self):
        # On a compute-bound device (single core, modest flop rate) a large
        # power-of-two exponent expands into a handful of cheap multiplies,
        # which the cost model prices below the expensive pow kernel.
        program, _, _ = power_program(100_000, 8)
        result = PowerExpansionPass(cost_model=CostModel("single_core")).run(program)
        assert result.changed

    def test_semantics_preserved_through_full_pass(self):
        program, out, memory = power_program(64, 13)
        result = PowerExpansionPass(strategy="binary").run(program)
        verifier = SemanticVerifier(
            initial_values={program.bases()[0]: memory.read_view(program[0].input_views[0])}
        )
        assert verifier.equivalent(program, result.program)

    def test_multiple_powers_all_expanded(self):
        builder = ProgramBuilder()
        x = builder.new_vector(8)
        y = builder.new_vector(8)
        z = builder.new_vector(8)
        builder.power(y, x, 4)
        builder.power(z, x, 6)
        builder.sync(y)
        builder.sync(z)
        result = PowerExpansionPass().run(builder.build())
        assert result.stats.rewrites_applied == 2
        assert result.program.count(OpCode.BH_POWER) == 0
