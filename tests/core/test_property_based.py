"""Property-based tests (hypothesis) for the transformation engine.

The central property: **for any valid byte-code program, the optimized
program computes the same observable values**.  Supporting properties cover
the addition-chain algebra and the view/overlap geometry the safety checks
rely on.
"""

import numpy as np
import pytest
from hypothesis import HealthCheck, given, settings
from hypothesis import strategies as st

from repro.bytecode.base import BaseArray
from repro.bytecode.view import View
from repro.core.addition_chains import binary_chain, naive_chain, optimal_chain, power_of_two_chain
from repro.core.constant_merge import ConstantMergePass
from repro.core.pipeline import optimize
from repro.core.power_expansion import expand_power
from repro.core.verifier import SemanticVerifier
from repro.bytecode.builder import ProgramBuilder
from repro.bytecode.program import Program
from repro.workloads.generators import random_elementwise_program

# The optimizer runs a full pipeline per example; keep example counts modest
# so the property suite stays fast while still covering a wide program space.
_SETTINGS = settings(
    max_examples=40,
    deadline=None,
    suppress_health_check=[HealthCheck.too_slow],
)


class TestOptimizerPreservesSemantics:
    @_SETTINGS
    @given(seed=st.integers(min_value=0, max_value=10_000))
    def test_random_programs_survive_the_full_pipeline(self, seed):
        program, synced = random_elementwise_program(seed, num_instructions=10)
        report = optimize(program)
        verifier = SemanticVerifier(rtol=1e-5, atol=1e-6, seed=seed)
        verifier.check(program, report.optimized)

    @_SETTINGS
    @given(
        seed=st.integers(min_value=0, max_value=10_000),
        num_instructions=st.integers(min_value=1, max_value=20),
    )
    def test_optimizer_never_grows_kernel_launch_count(self, seed, num_instructions):
        program, _ = random_elementwise_program(
            seed, num_instructions=num_instructions, include_power=False
        )
        report = optimize(program)
        assert report.optimized.num_kernels() <= program.num_kernels()

    @_SETTINGS
    @given(
        constants=st.lists(
            st.floats(min_value=-100, max_value=100, allow_nan=False), min_size=2, max_size=12
        )
    )
    def test_constant_merge_equals_python_sum(self, constants):
        builder = ProgramBuilder()
        v = builder.new_vector(8)
        builder.identity(v, 0)
        for constant in constants:
            builder.add(v, v, float(constant))
        builder.sync(v)
        program = builder.build()
        result = ConstantMergePass().run(program)
        from repro.runtime.interpreter import NumPyInterpreter

        values = NumPyInterpreter().execute(result.program).value(v)
        assert np.allclose(values, sum(constants), rtol=1e-9, atol=1e-9)


class TestAdditionChainProperties:
    @given(n=st.integers(min_value=1, max_value=200))
    @settings(max_examples=80, deadline=None)
    def test_all_strategies_produce_valid_chains(self, n):
        for builder in (naive_chain, power_of_two_chain, binary_chain):
            chain = builder(n)
            assert chain.is_valid()
            assert chain.values[-1] == n

    @given(n=st.integers(min_value=1, max_value=60))
    @settings(max_examples=60, deadline=None)
    def test_strategy_quality_ordering(self, n):
        assert (
            optimal_chain(n).num_multiplies
            <= binary_chain(n).num_multiplies
            <= power_of_two_chain(n).num_multiplies
            <= naive_chain(n).num_multiplies
        )

    @given(n=st.integers(min_value=2, max_value=64), size=st.integers(min_value=1, max_value=32))
    @settings(max_examples=40, deadline=None)
    def test_expansion_matches_numpy_power(self, n, size):
        builder = ProgramBuilder()
        x = builder.new_vector(size)
        y = builder.new_vector(size)
        builder.power(y, x, n)
        builder.sync(y)
        program = builder.build()
        replacement = expand_power(program[0], strategy="binary")
        expanded = Program(replacement + [program[1]])

        from repro.runtime.interpreter import NumPyInterpreter
        from repro.runtime.memory import MemoryManager

        rng = np.random.default_rng(n * 1000 + size)
        data = rng.uniform(0.5, 1.5, size)
        memory = MemoryManager()
        memory.set_data(x.base, data)
        values = NumPyInterpreter().execute(expanded, memory).value(y)
        assert np.allclose(values, data ** n, rtol=1e-9)


class TestViewGeometryProperties:
    @given(
        length=st.integers(min_value=1, max_value=64),
        start=st.integers(min_value=0, max_value=63),
        step=st.integers(min_value=1, max_value=8),
    )
    @settings(max_examples=60, deadline=None)
    def test_slice_views_stay_in_bounds(self, length, start, step):
        base = BaseArray(64)
        stop = min(64, start + length)
        if stop <= start:
            return
        view = View.from_slice(base, start, stop, step)
        indices = view.element_indices()
        assert all(0 <= index < 64 for index in indices)
        assert len(indices) == view.nelem

    @given(
        first_start=st.integers(min_value=0, max_value=32),
        first_len=st.integers(min_value=1, max_value=16),
        second_start=st.integers(min_value=0, max_value=32),
        second_len=st.integers(min_value=1, max_value=16),
    )
    @settings(max_examples=80, deadline=None)
    def test_overlap_agrees_with_exact_index_sets(
        self, first_start, first_len, second_start, second_len
    ):
        base = BaseArray(64)
        first = View(base, first_start, (first_len,))
        second = View(base, second_start, (second_len,))
        exact = bool(set(first.element_indices()) & set(second.element_indices()))
        assert first.overlaps(second) == exact
        assert second.overlaps(first) == exact
