"""Tests for the dependency-graph fusion scheduler (repro.core.schedule)."""

import numpy as np
import pytest

from repro.bytecode.builder import ProgramBuilder
from repro.bytecode.opcodes import OpCode
from repro.bytecode.program import Program
from repro.bytecode.view import View
from repro.core.fusion import FusionPass
from repro.core.schedule import (
    FusionSchedule,
    compute_schedule,
    dependency_graph,
    fusion_schedule_of,
    schedule_signature,
)
from repro.runtime.interpreter import NumPyInterpreter
from repro.runtime.plan import config_signature
from repro.utils.config import config_override, get_config
from repro.utils.errors import ExecutionError


def interleaved_program(length=16):
    """Element-wise chain with a reduction interleaved mid-chain."""
    builder = ProgramBuilder()
    v = builder.new_vector(length)
    w = builder.new_vector(length)
    total = builder.new_vector(1)
    builder.identity(v, 1)             # 0: e
    builder.add_reduce(total, v, 0)    # 1: reduction (reads v)
    builder.add(w, v, 2)               # 2: e (depends on 0 only)
    builder.multiply(w, w, 3)          # 3: e
    builder.sync(w)                    # 4
    builder.sync(total)                # 5
    return builder.build(), (v, w, total)


class TestDependencyGraph:
    def test_flow_anti_and_output_edges(self):
        builder = ProgramBuilder()
        a = builder.new_vector(8)
        b = builder.new_vector(8)
        builder.identity(a, 1)        # 0 writes a
        builder.add(b, a, 1)          # 1 reads a (flow on 0), writes b
        builder.identity(a, 2)        # 2 writes a (anti on 1, output on 0)
        program = builder.build()
        successors, predecessors = dependency_graph(program)
        assert 1 in successors[0]          # read-after-write
        assert 2 in successors[1]          # write-after-read
        assert 2 in successors[0]          # write-after-write
        assert predecessors[0] == 0
        assert predecessors[2] == 2

    def test_disjoint_windows_do_not_conflict(self):
        builder = ProgramBuilder()
        base = builder.new_base(16)
        lo = View(base, 0, (8,), (1,))
        hi = View(base, 8, (8,), (1,))
        builder.emit(OpCode.BH_IDENTITY, lo, 1.0)   # 0 writes lo
        builder.emit(OpCode.BH_IDENTITY, hi, 2.0)   # 1 writes hi (disjoint)
        successors, _ = dependency_graph(builder.build())
        assert 1 not in successors[0]

    def test_free_is_a_barrier_for_its_base(self):
        builder = ProgramBuilder()
        a = builder.new_vector(8)
        builder.identity(a, 1)    # 0
        builder.free(a)           # 1
        program = builder.build()
        successors, _ = dependency_graph(program)
        assert 1 in successors[0]

    def test_sync_counts_as_a_read(self):
        builder = ProgramBuilder()
        a = builder.new_vector(8)
        builder.identity(a, 1)    # 0 writes a
        builder.sync(a)           # 1 observes a
        builder.identity(a, 2)    # 2 overwrites a: must stay after the sync
        successors, _ = dependency_graph(builder.build())
        assert 1 in successors[0]
        assert 2 in successors[1]


class TestDagScheduling:
    def test_clusters_across_an_interleaved_reduction(self):
        program, _ = interleaved_program()
        schedule = compute_schedule(program)
        assert schedule.scheduler == "dag"
        # 0, 2, 3 fuse into one kernel; the reduction executes after it.
        assert (0, 2, 3) in schedule.items
        assert schedule.kernels_after < schedule.kernels_before
        assert schedule.bytecodes_reordered > 0
        assert schedule.predicted_savings_seconds > 0

    def test_consecutive_mode_does_not_reorder(self):
        program, _ = interleaved_program()
        with config_override(fusion_scheduler="consecutive"):
            schedule = compute_schedule(program)
        assert schedule.is_identity_order
        assert schedule.bytecodes_reordered == 0
        # The interleaved reduction cuts the chain: 0 stays a singleton.
        assert (0,) in schedule.items
        assert (2, 3) in schedule.items

    def test_cost_threshold_disables_merging(self):
        program, _ = interleaved_program()
        with config_override(fusion_cost_threshold=1.0):
            schedule = compute_schedule(program)
        assert schedule.num_clusters == 0
        assert schedule.is_identity_order

    def test_max_kernel_size_bounds_clusters(self):
        builder = ProgramBuilder()
        v = builder.new_vector(8)
        builder.identity(v, 1)
        for _ in range(7):
            builder.add(v, v, 1)
        program = builder.build()
        schedule = compute_schedule(program, max_kernel_size=3)
        assert all(len(item) <= 3 for item in schedule.items)
        assert schedule.num_clusters == 3  # 8 byte-codes in 3+3+2

    def test_rescheduling_the_materialized_program_is_identity(self):
        program, _ = interleaved_program()
        schedule = compute_schedule(program)
        fused = schedule.materialize(program)
        again = compute_schedule(fused)
        assert again.is_identity_order
        assert again.num_clusters == 0

    def test_war_dependency_prevents_illegal_hoist(self):
        """An overwrite of a reduction's input must stay after the reduction."""
        builder = ProgramBuilder()
        v = builder.new_vector(8)
        total = builder.new_vector(1)
        builder.identity(v, 3)            # 0
        builder.add_reduce(total, v, 0)   # 1 reads v
        builder.identity(v, 7)            # 2 overwrites v
        builder.sync(v)
        builder.sync(total)
        program = builder.build()
        schedule = compute_schedule(program)
        order = schedule.order
        assert order.index(2) > order.index(1)
        # And the executed result matches the original program bitwise.
        reference = NumPyInterpreter().execute(program)
        scheduled = NumPyInterpreter().execute(schedule.materialize(program))
        assert reference.scalar(total) == scheduled.scalar(total)
        assert np.array_equal(reference.value(v), scheduled.value(v))

    def test_min_kernel_size_splits_sub_threshold_clusters(self):
        # The schedule's launch counts must describe exactly what a caller
        # with the same wrapping threshold will emit: a 2-byte-code cluster
        # under min_kernel_size=3 is broken back into singletons.
        builder = ProgramBuilder()
        v = builder.new_vector(8)
        builder.identity(v, 1)
        builder.add(v, v, 1)
        program = builder.build()
        schedule = compute_schedule(program, min_kernel_size=3)
        assert schedule.num_clusters == 0
        assert schedule.kernels_after == 2
        # The undone merge's predicted saving must not be reported either.
        assert schedule.predicted_savings_seconds == 0.0
        assert len(schedule.materialize(program, min_kernel_size=3)) == 2

    def test_consecutive_mode_matches_partition_into_kernels(self):
        from repro.runtime.kernel import Kernel, partition_into_kernels

        program, _ = interleaved_program()
        with config_override(fusion_scheduler="consecutive"):
            schedule = compute_schedule(program)
        sizes = [
            item.size if isinstance(item, Kernel) else 1
            for item in partition_into_kernels(program)
        ]
        assert [len(item) for item in schedule.items] == sizes

    def test_unknown_scheduler_is_an_error(self):
        program, _ = interleaved_program()
        with config_override(fusion_scheduler="telepathic"):
            with pytest.raises(ExecutionError, match="unknown fusion scheduler"):
                compute_schedule(program)

    def test_every_bytecode_scheduled_exactly_once(self):
        program, _ = interleaved_program()
        schedule = compute_schedule(program)
        assert sorted(schedule.order) == list(range(len(program)))


class TestFusionPassIntegration:
    def test_pass_records_the_schedule_artifact(self):
        program, _ = interleaved_program()
        result = FusionPass().run(program)
        schedule = result.stats.artifacts["fusion_schedule"]
        assert isinstance(schedule, FusionSchedule)
        assert result.changed
        fused = result.program
        assert fused.count(OpCode.BH_FUSED, include_fused=False) == 1

    def test_pass_is_idempotent(self):
        program, _ = interleaved_program()
        once = FusionPass().run(program)
        twice = FusionPass().run(once.program)
        assert not twice.changed
        assert list(twice.program) == list(once.program)

    def test_fusion_schedule_of_aggregates_across_iterations(self):
        from repro.core.pipeline import optimize

        program, _ = interleaved_program()
        report = optimize(program)
        schedule = fusion_schedule_of(report)
        assert schedule is not None
        assert schedule.kernels_after < schedule.kernels_before
        assert fusion_schedule_of(None) is None

    def test_scheduled_program_verifies_semantically(self):
        from repro.core.pipeline import optimize
        from repro.core.verifier import SemanticVerifier

        program, _ = interleaved_program()
        report = optimize(program)
        assert SemanticVerifier().equivalent(program, report.optimized)


class TestSignatures:
    def test_scheduler_knobs_are_in_the_plan_cache_signature(self):
        baseline = config_signature()
        with config_override(fusion_scheduler="consecutive"):
            assert config_signature() != baseline
        with config_override(fusion_cost_threshold=0.5):
            assert config_signature() != baseline

    def test_schedule_signature_tracks_the_knobs(self):
        baseline = schedule_signature()
        assert baseline[0] == get_config().fusion_scheduler
        with config_override(fusion_max_kernel_size=4):
            assert schedule_signature() != baseline
