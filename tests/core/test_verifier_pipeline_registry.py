"""Tests for the semantic verifier, the pass registry and the pipeline."""

import numpy as np
import pytest

from repro.bytecode.builder import ProgramBuilder
from repro.bytecode.opcodes import OpCode
from repro.bytecode.program import Program
from repro.core.pipeline import OptimizationReport, Pipeline, default_pipeline, optimize
from repro.core.rules import (
    DEFAULT_PASS_ORDER,
    Pass,
    PassResult,
    available_passes,
    create_pass,
    register_pass,
)
from repro.core.verifier import SemanticVerifier, VerificationError
from repro.utils.config import config_override
from repro.workloads import repeated_constant_add


class TestSemanticVerifier:
    def test_identical_programs_are_equivalent(self):
        program, _ = repeated_constant_add(16, repeats=3)
        assert SemanticVerifier().equivalent(program, program.copy())

    def test_correct_rewrite_passes(self):
        program, _ = repeated_constant_add(16, repeats=3)
        optimized = optimize(program).optimized
        SemanticVerifier().check(program, optimized)  # must not raise

    def test_wrong_constant_detected(self):
        program, view = repeated_constant_add(16, repeats=3)
        builder = ProgramBuilder()
        # hand-build a broken "optimized" program: adds 4 instead of 3
        broken = Program(
            [
                program[0],
                program[1].with_constant(4),
                program[-1],
            ]
        )
        with pytest.raises(VerificationError, match="differs"):
            SemanticVerifier().check(program, broken)

    def test_shape_change_detected(self):
        builder = ProgramBuilder()
        v = builder.new_vector(8)
        builder.identity(v, 1)
        builder.sync(v)
        original = builder.build()

        from repro.bytecode.view import View

        half = View(v.base, 0, (4,))
        broken = Program(
            [original[0], original[1].replace(operands=(half,))]
        )
        # Same base, but the sync exposes a different region; values still
        # compare over the full base so this passes or fails consistently —
        # verify the checker at least runs and returns a decision.
        verifier = SemanticVerifier()
        assert verifier.equivalent(original, broken) in (True, False)

    def test_explicit_initial_values_respected(self):
        builder = ProgramBuilder()
        x = builder.new_vector(4)
        y = builder.new_vector(4)
        builder.add(y, x, 1)
        builder.sync(y)
        program = builder.build()
        verifier = SemanticVerifier(initial_values={x.base: np.array([1.0, 2.0, 3.0, 4.0])})
        outputs = verifier.outputs(program, verifier._prepare_memory(program.bases()))
        assert np.allclose(outputs[y.base.name], [2.0, 3.0, 4.0, 5.0])

    def test_dropped_synced_output_detected(self):
        """Regression: a rewrite that deletes a SYNC-exposed output used to
        pass silently (the missing name was skipped with ``continue``)."""
        builder = ProgramBuilder()
        x = builder.new_vector(8, name="x")
        y = builder.new_vector(8, name="y")
        builder.identity(x, 1)
        builder.add(y, x, 1)
        builder.sync(x)
        builder.sync(y)
        original = builder.build()
        # A broken "optimization" that drops y's store and its SYNC.
        broken = Program([original[0], original[2]])
        with pytest.raises(VerificationError, match="dropped.*BH_SYNC|BH_SYNC.*dropped"):
            SemanticVerifier().check(original, broken)

    def test_pipeline_verify_catches_sync_dropping_pass(self):
        class SyncStoreDroppingPass(Pass):
            name = "sync_store_dropper"

            def run(self, program):
                stats = self._new_stats(program)
                # Delete the last SYNC and the store feeding it.
                synced = [
                    i for i, inst in enumerate(program)
                    if inst.opcode is OpCode.BH_SYNC
                ]
                drop = set()
                if synced:
                    target = program[synced[-1]].operands[0].base
                    drop.add(synced[-1])
                    for i, inst in enumerate(program):
                        if inst.out is not None and inst.out.base is target:
                            drop.add(i)
                instructions = [
                    inst for i, inst in enumerate(program) if i not in drop
                ]
                stats.rewrites_applied += len(program) - len(instructions)
                return self._finish(Program(instructions), stats)

        builder = ProgramBuilder()
        x = builder.new_vector(8)
        y = builder.new_vector(8)
        builder.identity(x, 1)
        builder.add(y, x, 1)
        builder.sync(x)
        builder.sync(y)
        pipeline = Pipeline([SyncStoreDroppingPass()], verify=True)
        report = pipeline.run(builder.build())
        assert report.verified is False

    def test_unsynced_temporary_may_still_be_dropped(self):
        # The fix must not overreach: eliminating a base the original only
        # wrote (never SYNCed) remains legal — that is what DCE is for.
        builder = ProgramBuilder()
        t = builder.new_vector(8)
        y = builder.new_vector(8)
        builder.identity(t, 1)
        builder.add(y, t, 1)
        builder.sync(y)
        original = builder.build()
        optimized = optimize(original).optimized
        SemanticVerifier().check(original, optimized)  # must not raise

    def test_tolerances_allow_rounding_differences(self):
        builder = ProgramBuilder()
        v = builder.new_vector(4)
        builder.identity(v, 1.0)
        builder.divide(v, v, 3.0)
        builder.multiply(v, v, 3.0)
        builder.sync(v)
        original = builder.build()
        # "optimized": the divide+multiply cancel entirely
        simplified = Program([original[0], original[-1]])
        assert SemanticVerifier().equivalent(original, simplified)


class TestPassRegistry:
    def test_default_passes_registered(self):
        assert set(DEFAULT_PASS_ORDER) <= set(available_passes())

    def test_create_pass_by_name(self):
        assert create_pass("constant_merge").name == "constant_merge"

    def test_create_pass_with_kwargs(self):
        instance = create_pass("power_expansion", strategy="binary")
        assert instance.strategy == "binary"

    def test_unknown_pass_rejected(self):
        with pytest.raises(KeyError):
            create_pass("turbo_encabulator")

    def test_custom_pass_registration(self):
        class NoOpPass(Pass):
            name = "noop_test_pass"

            def run(self, program):
                stats = self._new_stats(program)
                return self._finish(program.copy(), stats)

        register_pass("noop_test_pass", NoOpPass)
        assert "noop_test_pass" in available_passes()
        assert isinstance(create_pass("noop_test_pass"), NoOpPass)


class TestPipeline:
    def test_report_counts(self):
        program, _ = repeated_constant_add(16, repeats=3)
        report = optimize(program)
        assert isinstance(report, OptimizationReport)
        assert report.instructions_before == 5
        assert report.instructions_after < report.instructions_before
        assert report.changed
        assert report.total_rewrites >= 2  # constant merge + fusion
        assert report.iterations >= 1

    def test_summary_mentions_passes(self):
        program, _ = repeated_constant_add(16, repeats=3)
        summary = optimize(program).summary()
        assert "constant_merge" in summary
        assert "byte-codes" in summary

    def test_enabled_passes_subset(self):
        program, _ = repeated_constant_add(16, repeats=3)
        report = optimize(program, enabled_passes=["constant_merge"])
        assert report.optimized.count(OpCode.BH_FUSED) == 0
        assert report.optimized.count(OpCode.BH_ADD) == 1

    def test_config_enabled_passes_respected(self):
        program, _ = repeated_constant_add(16, repeats=3)
        with config_override(enabled_passes=["fusion"]):
            report = optimize(program)
        assert report.optimized.count(OpCode.BH_ADD, include_fused=True) == 3
        assert report.optimized.count(OpCode.BH_FUSED) == 1

    def test_pass_kwargs_forwarded(self):
        from repro.workloads import power_program

        program, _, _ = power_program(8, 10)
        report = optimize(program, power_expansion={"strategy": "naive"})
        assert report.optimized.count(OpCode.BH_MULTIPLY) == 9

    def test_fixed_point_combines_passes_across_iterations(self):
        # identity-simplify turns x*1 into a no-op; constant merge then sees
        # an uninterrupted run of adds; dce and fusion clean up afterwards.
        builder = ProgramBuilder()
        v = builder.new_vector(8)
        builder.identity(v, 0)
        builder.add(v, v, 1)
        builder.multiply(v, v, 1)
        builder.add(v, v, 1)
        builder.sync(v)
        report = optimize(builder.build())
        assert report.optimized.count(OpCode.BH_MULTIPLY, include_fused=True) == 0
        assert report.optimized.count(OpCode.BH_ADD, include_fused=True) == 1

    def test_fixed_point_max_iterations_bound(self):
        program, _ = repeated_constant_add(16, repeats=3)
        pipeline = default_pipeline()
        pipeline.max_iterations = 1
        report = pipeline.run(program)
        assert report.iterations == 1

    def test_single_pass_mode(self):
        program, _ = repeated_constant_add(16, repeats=3)
        report = optimize(program, fixed_point=False)
        assert report.iterations == 1

    def test_verification_hook(self):
        program, _ = repeated_constant_add(16, repeats=3)
        report = optimize(program, verify=True)
        assert report.verified is True

    def test_verification_catches_broken_pass(self):
        class BreakingPass(Pass):
            name = "breaking_pass"

            def run(self, program):
                stats = self._new_stats(program)
                instructions = []
                for instruction in program:
                    if instruction.opcode is OpCode.BH_ADD:
                        stats.rewrites_applied += 1
                        instructions.append(instruction.with_constant(99))
                    else:
                        instructions.append(instruction)
                return self._finish(Program(instructions), stats)

        program, _ = repeated_constant_add(16, repeats=1)
        pipeline = Pipeline([BreakingPass()], verify=True)
        report = pipeline.run(program)
        assert report.verified is False

    def test_pipeline_accepts_pass_names_and_instances(self):
        from repro.core.constant_merge import ConstantMergePass

        pipeline = Pipeline(["dce", ConstantMergePass()])
        assert pipeline.pass_names() == ["dce", "constant_merge"]

    def test_empty_program_passes_through(self):
        report = optimize(Program())
        assert len(report.optimized) == 0
        assert not report.changed

    def test_stats_for_filters_by_pass(self):
        program, _ = repeated_constant_add(16, repeats=3)
        report = optimize(program)
        merge_stats = report.stats_for("constant_merge")
        assert merge_stats
        assert all(stats.pass_name == "constant_merge" for stats in merge_stats)
