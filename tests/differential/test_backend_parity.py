"""Differential testing: every backend against the NumPy oracle.

A second *real* execution backend multiplies the ways results can diverge:
tiling can mis-slice a view, a rebound plan can alias the wrong base, an
optimization pass can interact badly with a backend-specific execution
strategy.  This harness pits every registered real backend — interpreter,
fusing JIT, tiled parallel, native codegen, simulated cluster — and both
optimization levels against a single oracle on randomly generated programs.

The native backend runs compiled C loop nests for every kernel form that
lowers bitwise-safely and silently degrades to the parallel backend's
interpreted templates otherwise (including on hosts with no C compiler),
so its parity obligations are exactly the parallel backend's; a dedicated
non-vacuity test pins that compiled kernels actually executed.

The oracle is the unoptimized reference interpreter: it executes one
byte-code per NumPy operation in program order, which *is* the NumPy
semantics of the program.  Three layers of assertion:

1. every backend × optimization level matches the oracle within the
   semantic verifier's tolerances (optimization may legitimately reorder
   floating-point work, e.g. power expansion),
2. all backends executing the *same* optimized program agree bit-for-bit
   on element-wise programs (they run the same NumPy ops; tiling slices
   rows but never reorders arithmetic),
3. the tiled parallel backend actually tiled something (the configuration
   pins tiny tiles), so the parity statement covers the parallel code
   path rather than a wall of serial fallbacks.

The only relaxation: programs with full 1-D reductions compare the
parallel backend within tight tolerances instead of bitwise, because
tree-combining per-tile partials legitimately reassociates the reduction.

Adding a backend to the harness: register it (see
``docs/architecture.md``), append its name to ``BACKENDS`` below, and — if
it reorders floating-point arithmetic — to ``REASSOCIATING_BACKENDS``.
"""

from __future__ import annotations

import numpy as np
import pytest

from repro.runtime.engine import ExecutionEngine
from repro.utils.config import config_override
from repro.workloads.generators import random_elementwise_program, random_mixed_program

#: Every backend the harness checks.  All execute for real (the cluster
#: backend computes via the interpreter and only *prices* in simulation).
BACKENDS = ("interpreter", "jit", "parallel", "native", "cluster")

#: Backends allowed to reassociate floating-point reductions (tree-combined
#: tile partials); they get tolerance instead of bitwise comparison on
#: programs containing full 1-D reductions.  The native backend inherits
#: the parallel backend's reduction paths unchanged.
REASSOCIATING_BACKENDS = ("parallel", "native")

#: Tolerances matching the semantic verifier's defaults.
RTOL, ATOL = 1e-6, 1e-8

#: Force multi-tile execution paths even on the small arrays the generator
#: produces, so parity covers tiling rather than serial fallbacks.
TINY_TILES = dict(parallel_tile_elements=16, parallel_serial_threshold=4)

ELEMENTWISE_SEEDS = tuple(range(60))
MIXED_SEEDS = tuple(range(1000, 1040))


def _execute(program, views, backend, optimize):
    engine = ExecutionEngine(backend=backend, optimize=optimize)
    result = engine.execute(program)
    return [result.value(view) for view in views], result.stats


def _assert_close(actual, expected, context):
    np.testing.assert_allclose(
        actual, expected, rtol=RTOL, atol=ATOL, equal_nan=True, err_msg=context
    )


def _assert_bitwise(actual, expected, context):
    assert np.array_equal(actual, expected, equal_nan=True), (
        f"{context}: results differ bitwise\nexpected={expected!r}\nactual={actual!r}"
    )


def _check_program(program, synced, bitwise_backends, close_backends):
    """Run the full backend × optimization matrix for one program."""
    oracle, _ = _execute(program, synced, "interpreter", optimize=False)
    optimized_results = {}
    parallel_tiles = 0
    for backend in BACKENDS:
        for optimize in (False, True):
            values, stats = _execute(program, synced, backend, optimize)
            for index, (actual, expected) in enumerate(zip(values, oracle)):
                _assert_close(
                    actual,
                    expected,
                    f"{backend} (optimize={optimize}) vs oracle, output {index}",
                )
            if optimize:
                optimized_results[backend] = values
            if backend == "parallel":
                parallel_tiles += stats.tiles_executed
    # All backends executed the same optimized program: results must agree
    # exactly (modulo documented reduction reassociation).
    reference = optimized_results["interpreter"]
    for backend in bitwise_backends:
        for index, (actual, expected) in enumerate(
            zip(optimized_results[backend], reference)
        ):
            _assert_bitwise(actual, expected, f"{backend} vs interpreter, output {index}")
    for backend in close_backends:
        for index, (actual, expected) in enumerate(
            zip(optimized_results[backend], reference)
        ):
            _assert_close(actual, expected, f"{backend} vs interpreter, output {index}")
    assert parallel_tiles > 0, "parallel backend never tiled; parity proves nothing"


@pytest.mark.parametrize("seed", ELEMENTWISE_SEEDS)
def test_elementwise_program_parity(seed):
    """Element-wise programs: every backend bit-identical to the others."""
    program, synced = random_elementwise_program(
        seed, num_instructions=12, vector_length=24
    )
    with config_override(**TINY_TILES):
        _check_program(
            program,
            synced,
            bitwise_backends=("jit", "parallel", "native", "cluster"),
            close_backends=(),
        )


@pytest.mark.parametrize("seed", MIXED_SEEDS)
def test_mixed_program_parity(seed):
    """Programs with reductions and generators: tolerance for tree combines."""
    program, synced = random_mixed_program(seed, num_instructions=10)
    with config_override(**TINY_TILES):
        _check_program(
            program,
            synced,
            bitwise_backends=("jit", "cluster"),
            close_backends=REASSOCIATING_BACKENDS,
        )


@pytest.mark.parametrize("backend", BACKENDS)
def test_memory_planning_is_bitwise_invisible(backend):
    """Planning on vs. off: bitwise-identical results on every backend.

    Slot aliasing and zero-fill waivers may only rearrange *where*
    temporaries live, never what any observable view contains — the
    planner waives a zero fill only where liveness proves no element can
    be read uninitialised, so even bit patterns must match.
    """
    for seed in (3, 11, 1003, 1011):
        generator = random_elementwise_program if seed < 1000 else random_mixed_program
        program, synced = generator(seed)
        with config_override(**TINY_TILES, memory_plan_enabled=True):
            planned, _ = _execute(program, synced, backend, optimize=True)
        with config_override(
            **TINY_TILES, memory_plan_enabled=False, memory_pool_max_bytes=0
        ):
            unplanned, _ = _execute(program, synced, backend, optimize=True)
        for index, (actual, expected) in enumerate(zip(planned, unplanned)):
            _assert_bitwise(
                actual,
                expected,
                f"{backend} planned vs unplanned (seed {seed}), output {index}",
            )


@pytest.mark.parametrize("seed", MIXED_SEEDS[:12])
def test_fusion_scheduler_parity(seed):
    """DAG scheduling on vs. off: bitwise-identical on every backend.

    Mixed programs interleave reductions between element-wise byte-codes,
    so the dependency-graph scheduler's non-adjacent clustering genuinely
    reorders work; legality demands that not a single bit moves relative
    to the consecutive-only policy, on any backend.  (Tree-combined 1-D
    reduction partials are unaffected: the reduction instruction and its
    tile spans are identical under both schedules, so even the parallel
    backend must match bitwise.)
    """
    program, synced = random_mixed_program(seed, num_instructions=12)
    per_backend = {}
    for scheduler in ("dag", "consecutive"):
        with config_override(**TINY_TILES, fusion_scheduler=scheduler):
            for backend in BACKENDS:
                engine = ExecutionEngine(backend=backend, optimize=True)
                result = engine.execute(program)
                values = [result.value(view) for view in synced]
                per_backend.setdefault(backend, {})[scheduler] = values
    for backend, by_scheduler in per_backend.items():
        for index, (actual, expected) in enumerate(
            zip(by_scheduler["dag"], by_scheduler["consecutive"])
        ):
            _assert_bitwise(
                actual, expected, f"{backend} dag vs consecutive, output {index}"
            )


def test_fusion_scheduler_exercises_non_adjacent_clustering():
    """At least some mixed seeds must make the DAG scheduler reorder work.

    Without this the parity axis above could pass vacuously (identical
    schedules under both policies).
    """
    reordered = 0
    clustered_non_adjacent = 0
    for seed in MIXED_SEEDS[:12]:
        program, _ = random_mixed_program(seed, num_instructions=12)
        with config_override(fusion_scheduler="dag"):
            from repro.core.schedule import compute_schedule

            schedule = compute_schedule(program)
        reordered += schedule.bytecodes_reordered
        clustered_non_adjacent += sum(
            1
            for item in schedule.items
            if len(item) > 1
            and any(b != a + 1 for a, b in zip(item, item[1:]))
        )
    assert reordered > 0, "no seed made the DAG scheduler reorder anything"
    assert clustered_non_adjacent > 0, "no non-adjacent cluster was formed"


def test_native_backend_actually_compiles_kernels():
    """The native parity axis must not pass vacuously via fallbacks.

    With a C compiler present, the element-wise seeds must drive a
    substantial number of launches through compiled loop nests; a harness
    where every step fell back to interpreted templates would reduce the
    native column to a re-run of the parallel one.
    """
    from repro.codegen import find_c_compiler

    if find_c_compiler() is None:
        pytest.skip("no C compiler on this host; native backend runs fallbacks only")
    native_launches = 0
    fallbacks = 0
    for seed in ELEMENTWISE_SEEDS[:8]:
        program, synced = random_elementwise_program(
            seed, num_instructions=12, vector_length=24
        )
        with config_override(**TINY_TILES):
            _, stats = _execute(program, synced, "native", optimize=True)
        native_launches += stats.native_kernel_launches
        fallbacks += stats.native_fallbacks
    assert native_launches > 0, "no kernel ever executed through compiled code"
    assert native_launches >= fallbacks, (
        f"compiled launches ({native_launches}) swamped by fallbacks ({fallbacks}); "
        "the lowering coverage regressed"
    )


@pytest.mark.parametrize("seed", ELEMENTWISE_SEEDS[:20])
def test_native_thread_axis_elementwise_bitwise(seed):
    """native × threads∈{1,4}: in-kernel threading may not move a bit.

    Element-wise kernels compute each output element independently, so the
    block partition performed inside ``repro_kernel_mt`` must be invisible:
    the threads=4 run compares bitwise against the threads=1 run (and both
    against the oracle via the main parity axis).
    """
    program, synced = random_elementwise_program(
        seed, num_instructions=12, vector_length=24
    )
    results = {}
    for threads in (1, 4):
        with config_override(**TINY_TILES, codegen_threads=threads):
            results[threads], _ = _execute(program, synced, "native", optimize=True)
    for index, (actual, expected) in enumerate(zip(results[4], results[1])):
        _assert_bitwise(
            actual, expected, f"native threads=4 vs threads=1 (seed {seed}), output {index}"
        )


@pytest.mark.parametrize("seed", MIXED_SEEDS[:20])
def test_native_thread_axis_mixed_within_contract(seed):
    """native × threads∈{1,4} on reduction-bearing programs.

    Thread count changes how a compiled 1-D combine reduction chunks its
    partials, which reassociates floating-point folds — exactly the
    relaxation the parallel backend already has.  No new tolerance is
    introduced: the comparison uses the established RTOL/ATOL.
    """
    program, synced = random_mixed_program(seed, num_instructions=10)
    results = {}
    for threads in (1, 4):
        with config_override(**TINY_TILES, codegen_threads=threads):
            results[threads], _ = _execute(program, synced, "native", optimize=True)
    for index, (actual, expected) in enumerate(zip(results[4], results[1])):
        _assert_close(
            actual, expected, f"native threads=4 vs threads=1 (seed {seed}), output {index}"
        )


def test_native_mt_entry_point_actually_fired():
    """The thread axis must not pass vacuously on the single-thread path.

    With a threading-capable toolchain, the threads=4 column above must
    have routed launches through ``repro_kernel_mt``; if every launch took
    the per-tile path the axis would compare the serial path to itself.
    """
    from repro.codegen import find_c_compiler
    from repro.codegen.compiler import select_mt_mode

    if find_c_compiler() is None:
        pytest.skip("no C compiler on this host; native backend runs fallbacks only")
    if select_mt_mode() == "serial":
        pytest.skip("toolchain supports neither -pthread nor OpenMP")
    mt_launches = 0
    for seed in ELEMENTWISE_SEEDS[:8]:
        program, synced = random_elementwise_program(
            seed, num_instructions=12, vector_length=24
        )
        with config_override(**TINY_TILES, codegen_threads=4):
            _, stats = _execute(program, synced, "native", optimize=True)
        mt_launches += stats.native_mt_launches
    assert mt_launches > 0, "repro_kernel_mt never fired; the thread axis is vacuous"


def test_optimization_levels_agree_per_backend():
    """Optimized and unoptimized pipelines agree within tolerance per backend."""
    for seed in (7, 21, 1007):
        generator = random_elementwise_program if seed < 1000 else random_mixed_program
        program, synced = generator(seed)
        with config_override(**TINY_TILES):
            for backend in BACKENDS:
                plain, _ = _execute(program, synced, backend, optimize=False)
                optimized, _ = _execute(program, synced, backend, optimize=True)
                for index, (actual, expected) in enumerate(zip(optimized, plain)):
                    _assert_close(
                        actual, expected, f"{backend} optimized vs plain, output {index}"
                    )
