"""Differential axis: the static checking layer must be observationally inert.

``check_ir`` turns on the between-pass IR verifier and the plan-artifact
soundness checks.  Both are read-only analyzers, so two properties must
hold simultaneously on the randomized program corpus:

1. every backend produces bitwise-identical results with checks on and
   off (the checks may abort a broken compile, never perturb a sound one),
2. the checks actually ran (non-vacuity) — an axis where the analyzers
   silently short-circuited would prove nothing about the real pipeline.

A clean run over this corpus is also the strongest false-positive test we
have: every legal pass output and every planner artifact the corpus can
produce flows through the analyzers, and a single spurious
``IRCheckError``/``PlanCheckError`` fails the axis.
"""

from __future__ import annotations

import numpy as np
import pytest

from repro.checks import COUNTERS
from repro.runtime.engine import ExecutionEngine
from repro.utils.config import config_override
from repro.workloads.generators import random_elementwise_program, random_mixed_program

BACKENDS = ("interpreter", "jit", "parallel", "native", "cluster")

#: Tiny tiles force the tiled/planned code paths (and therefore the tiling
#: and memory-plan checkers) even on the generator's small arrays.
TINY_TILES = dict(parallel_tile_elements=16, parallel_serial_threshold=4)

ELEMENTWISE_SEEDS = tuple(range(12))
MIXED_SEEDS = tuple(range(1000, 1008))


def _execute(program, views, backend, check_ir):
    with config_override(**TINY_TILES, check_ir=check_ir, memory_plan_enabled=True):
        engine = ExecutionEngine(backend=backend, optimize=True)
        result = engine.execute(program)
        return [result.value(view) for view in views], result.stats


def _assert_bitwise(actual, expected, context):
    assert np.array_equal(actual, expected, equal_nan=True), (
        f"{context}: results differ bitwise\nexpected={expected!r}\nactual={actual!r}"
    )


@pytest.mark.parametrize("seed", ELEMENTWISE_SEEDS + MIXED_SEEDS)
def test_check_ir_is_bitwise_invisible(seed):
    """checks on vs. off: bitwise-identical results on every backend."""
    generator = random_elementwise_program if seed < 1000 else random_mixed_program
    program, synced = generator(seed)
    for backend in BACKENDS:
        unchecked, _ = _execute(program, synced, backend, check_ir=False)
        checked, _ = _execute(program, synced, backend, check_ir=True)
        for index, (actual, expected) in enumerate(zip(checked, unchecked)):
            _assert_bitwise(
                actual,
                expected,
                f"{backend} checked vs unchecked (seed {seed}), output {index}",
            )


def test_check_ir_axis_is_not_vacuous():
    """The axis above must have exercised both analyzer families.

    Replays a slice of the corpus and asserts the process-wide counters
    moved: between-pass IR checks during optimization, plan-artifact
    checks at prepare/execute time, and the per-flush statistics the
    engine attributes to a cache miss.
    """
    COUNTERS.reset()
    miss_ir_checks = 0
    plan_checks = 0
    for seed in (0, 3, 1000, 1003):
        generator = random_elementwise_program if seed < 1000 else random_mixed_program
        program, synced = generator(seed)
        for backend in ("interpreter", "parallel"):
            _, stats = _execute(program, synced, backend, check_ir=True)
            miss_ir_checks += stats.ir_checks_run
            plan_checks += stats.plan_checks_run
    totals = COUNTERS.snapshot()
    assert totals["ir_checks_run"] > 0, "the between-pass IR verifier never ran"
    assert totals["plan_checks_run"] > 0, "the plan-artifact checks never ran"
    assert totals["ir_check_failures"] == 0
    assert totals["plan_check_failures"] == 0
    assert miss_ir_checks > 0, "no flush attributed IR checks to its stats"
    assert plan_checks > 0, "no flush attributed plan checks to its stats"
