"""Differential testing: the distributed backend against the NumPy oracle.

The sixth backend axis.  The dist backend executes across worker
*processes* over shared memory, which multiplies the ways results can
diverge beyond what the in-process backends exercise: a shard descriptor
can mis-slice, a halo exchange can fetch the wrong rows (or not fire at
all), a recycled segment can leak a previous tenant's bytes, combine
partials can be dealt to workers in an order that changes the reduction
tree.  The comparison discipline matches the in-process harness exactly:

* element-wise programs must be **bitwise** identical to the unoptimized
  reference interpreter at 1, 2 and 4 workers — sharding slices rows but
  never reorders arithmetic;
* the stencil workload (halo exchange on every iteration) must be bitwise
  at every worker count;
* mixed programs with full 1-D reductions get the same tolerance as the
  parallel backend (tree-combined partials reassociate) and **no looser**
  — and because the shard plan keeps the *plan's* span set at any worker
  count, dist results must additionally be bitwise stable across worker
  counts.

Non-vacuity is asserted separately: multi-process shard launches and at
least one halo exchange must actually have happened, otherwise a backend
that silently ran everything on the master would pass every comparison.
"""

from __future__ import annotations

import numpy as np
import pytest

from repro.frontend.session import Session
from repro.runtime.engine import ExecutionEngine
from repro.utils.config import config_override
from repro.workloads import heat_equation
from repro.workloads.generators import random_elementwise_program, random_mixed_program

#: Same relaxation the parallel backend gets for reassociated reductions.
RTOL, ATOL = 1e-6, 1e-8

#: Same tiny tiles as the in-process harness: force multi-shard paths.
TINY_TILES = dict(parallel_tile_elements=16, parallel_serial_threshold=4)

WORKER_COUNTS = (1, 2, 4)

ELEMENTWISE_SEEDS = tuple(range(0, 24))
MIXED_SEEDS = tuple(range(1000, 1016))


def _oracle(program, synced):
    engine = ExecutionEngine(backend="interpreter", optimize=False)
    result = engine.execute(program)
    return [result.value(view) for view in synced]


def _dist(program, synced, workers):
    with config_override(**TINY_TILES, dist_num_workers=workers):
        engine = ExecutionEngine(backend="dist", optimize=True)
        result = engine.execute(program)
        return [result.value(view) for view in synced], result.stats


@pytest.mark.parametrize("seed", ELEMENTWISE_SEEDS)
def test_elementwise_bitwise_vs_oracle(seed):
    program, synced = random_elementwise_program(
        seed, num_instructions=12, vector_length=24
    )
    expected = _oracle(program, synced)
    for workers in WORKER_COUNTS:
        program, synced = random_elementwise_program(
            seed, num_instructions=12, vector_length=24
        )
        values, _ = _dist(program, synced, workers)
        for index, (actual, reference) in enumerate(zip(values, expected)):
            assert np.array_equal(actual, reference, equal_nan=True), (
                f"dist({workers} workers) vs oracle, seed {seed}, output {index}"
            )


@pytest.mark.parametrize("seed", MIXED_SEEDS)
def test_mixed_tolerance_vs_oracle_and_bitwise_across_worker_counts(seed):
    program, synced = random_mixed_program(seed, num_instructions=10)
    expected = _oracle(program, synced)
    per_workers = {}
    for workers in WORKER_COUNTS:
        program, synced = random_mixed_program(seed, num_instructions=10)
        values, _ = _dist(program, synced, workers)
        per_workers[workers] = values
        for index, (actual, reference) in enumerate(zip(values, expected)):
            np.testing.assert_allclose(
                actual,
                reference,
                rtol=RTOL,
                atol=ATOL,
                equal_nan=True,
                err_msg=f"dist({workers} workers) vs oracle, seed {seed}, output {index}",
            )
    # The shard plan deals the *plan's* spans at every worker count, so the
    # combine tree is identical: dist vs dist must be bitwise.
    for workers in WORKER_COUNTS[1:]:
        for index, (actual, reference) in enumerate(
            zip(per_workers[workers], per_workers[1])
        ):
            assert np.array_equal(actual, reference, equal_nan=True), (
                f"dist({workers}) vs dist(1), seed {seed}, output {index}"
            )


@pytest.mark.parametrize("workers", WORKER_COUNTS)
def test_stencil_bitwise_vs_oracle(workers):
    session = Session(backend="interpreter", optimize=False)
    expected = heat_equation(grid_size=24, iterations=3, session=session).to_numpy()
    with config_override(
        parallel_tile_elements=64,
        parallel_serial_threshold=4,
        dist_num_workers=workers,
    ):
        dist_session = Session(backend="dist", optimize=True)
        actual = heat_equation(
            grid_size=24, iterations=3, session=dist_session
        ).to_numpy()
    assert np.array_equal(actual, expected), f"stencil at {workers} workers"


def test_axis_is_not_vacuous():
    """Multi-process shard launches and halo exchanges actually happened."""
    program, synced = random_elementwise_program(3, num_instructions=12, vector_length=24)
    _, stats = _dist(program, synced, 2)
    assert stats.dist_workers_used == 2
    assert stats.dist_shard_launches >= 2, "no multi-process shard launches"
    assert stats.dist_payload_bytes == 0, "array payload crossed the control channel"
    with config_override(
        parallel_tile_elements=64,
        parallel_serial_threshold=4,
        dist_num_workers=2,
    ):
        session = Session(backend="dist", optimize=True)
        heat_equation(grid_size=24, iterations=3, session=session).to_numpy()
        stencil_stats = session.stats_history[-1]
    assert stencil_stats.dist_halo_exchanges >= 1, "no halo exchange fired"
