"""Fixtures for the distributed suite: hang watchdog and tiny-tile config.

Distributed tests exercise real worker processes over pipes and shared
memory, so a protocol bug can manifest as a hang rather than a failure.
``pytest-timeout`` is not part of the environment, so every test in this
directory runs under a ``SIGALRM`` watchdog: on expiry the handler dumps
all thread stacks (``faulthandler``) and raises in the main thread,
turning a silent deadlock into a diagnosable failure.
"""

from __future__ import annotations

import faulthandler
import signal

import pytest

#: Generous per-test budget: worker spawn costs a second or two, the
#: slowest test a few more; anything hitting this is wedged, not slow.
WATCHDOG_SECONDS = 120

#: Tiny tiles force multi-shard execution paths even on the small arrays
#: the tests use, so coverage hits sharding rather than serial fallbacks.
TINY_TILES = dict(parallel_tile_elements=16, parallel_serial_threshold=4)


@pytest.fixture(autouse=True)
def hang_watchdog():
    """Fail (with all thread stacks) instead of hanging forever."""
    if not hasattr(signal, "SIGALRM"):  # pragma: no cover - non-POSIX hosts
        yield
        return

    def fire(signum, frame):
        faulthandler.dump_traceback()
        raise RuntimeError(
            f"dist test exceeded the {WATCHDOG_SECONDS}s hang watchdog"
        )

    previous = signal.signal(signal.SIGALRM, fire)
    signal.setitimer(signal.ITIMER_REAL, WATCHDOG_SECONDS)
    try:
        yield
    finally:
        signal.setitimer(signal.ITIMER_REAL, 0)
        signal.signal(signal.SIGALRM, previous)
