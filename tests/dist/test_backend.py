"""End-to-end tests for the distributed backend.

Everything here runs real worker processes over real shared memory; the
oracle is always the unoptimized reference interpreter.  The non-vacuity
assertions (shard launches, halo exchanges, zero payload bytes) are as
important as the value checks — a dist backend that silently fell back to
the master would pass every bitwise comparison.
"""

from __future__ import annotations

import numpy as np
import pytest

from conftest import TINY_TILES
from repro.checks import COUNTERS
from repro.dist.shardstore import sweep_manifests
from repro.frontend.session import Session
from repro.runtime.engine import ExecutionEngine
from repro.utils.config import config_override
from repro.utils.errors import DistributedExecutionError
from repro.workloads import heat_equation
from repro.workloads.generators import random_elementwise_program, random_mixed_program


def _oracle(program, synced):
    engine = ExecutionEngine(backend="interpreter", optimize=False)
    result = engine.execute(program)
    return [result.value(view) for view in synced]


def _dist(program, synced, workers, **overrides):
    settings = {**TINY_TILES, "dist_num_workers": workers, **overrides}
    with config_override(**settings):
        engine = ExecutionEngine(backend="dist", optimize=True)
        result = engine.execute(program)
        return [result.value(view) for view in synced], result.stats, engine


class TestElementwise:
    @pytest.mark.parametrize("workers", [1, 2, 4])
    def test_bitwise_vs_oracle(self, workers):
        for seed in (0, 7, 21):
            program, synced = random_elementwise_program(
                seed, num_instructions=12, vector_length=24
            )
            expected = _oracle(program, synced)
            values, stats, _ = _dist(program, synced, workers)
            for actual, reference in zip(values, expected):
                assert np.array_equal(actual, reference, equal_nan=True), (seed, workers)
            assert stats.dist_workers_used == workers

    def test_shards_actually_launch_multi_process(self):
        program, synced = random_elementwise_program(3, num_instructions=12, vector_length=24)
        _, stats, _ = _dist(program, synced, 2)
        assert stats.dist_shard_launches >= 2
        assert stats.dist_payload_bytes == 0
        assert stats.dist_control_frames > 0


class TestReductions:
    @pytest.mark.parametrize("seed", [1000, 1003, 1011])
    def test_bitwise_stable_across_worker_counts(self, seed):
        program, synced = random_mixed_program(seed, num_instructions=10)
        reference, _, _ = _dist(program, synced, 1)
        for workers in (2, 4):
            program, synced = random_mixed_program(seed, num_instructions=10)
            values, _, _ = _dist(program, synced, workers)
            for actual, expected in zip(values, reference):
                assert np.array_equal(actual, expected, equal_nan=True), (seed, workers)

    def test_close_to_oracle(self):
        # Tree-combined partials legitimately reassociate; tolerance matches
        # the parallel backend's differential relaxation exactly.
        for seed in (1000, 1003, 1011):
            program, synced = random_mixed_program(seed, num_instructions=10)
            expected = _oracle(program, synced)
            values, _, _ = _dist(program, synced, 2)
            for actual, reference in zip(values, expected):
                np.testing.assert_allclose(
                    actual, reference, rtol=1e-6, atol=1e-8, equal_nan=True
                )


class TestStencilHalo:
    def _run_heat(self, workers, halo_mode, grid=24, iterations=3):
        with config_override(
            parallel_tile_elements=64,
            parallel_serial_threshold=4,
            dist_num_workers=workers,
            dist_halo_mode=halo_mode,
        ):
            session = Session(backend="dist", optimize=True)
            out = heat_equation(
                grid_size=grid, iterations=iterations, session=session
            ).to_numpy()
            return out, session.stats_history[-1]

    @pytest.fixture(scope="class")
    def heat_oracle(self):
        session = Session(backend="interpreter", optimize=False)
        return heat_equation(grid_size=24, iterations=3, session=session).to_numpy()

    @pytest.mark.parametrize("workers", [1, 2, 4])
    def test_bitwise_vs_oracle(self, heat_oracle, workers):
        out, stats = self._run_heat(workers, "overlap")
        assert np.array_equal(out, heat_oracle)
        if workers > 1:
            # The exchange must actually fire: landing buffers start
            # uninitialised (np.empty), so a skipped fetch could not pass
            # the bitwise check above by luck.
            assert stats.dist_halo_exchanges > 0
            assert stats.dist_halo_bytes > 0

    def test_blocking_mode_matches_overlap(self, heat_oracle):
        blocking, stats = self._run_heat(2, "blocking")
        assert np.array_equal(blocking, heat_oracle)
        assert stats.dist_halo_exchanges > 0

    def test_no_array_payload_ever_crosses_the_channel(self, heat_oracle):
        out, stats = self._run_heat(2, "overlap")
        assert np.array_equal(out, heat_oracle)
        assert stats.dist_payload_bytes == 0


class TestShardLegality:
    def test_fewer_rows_than_workers_never_launches_empty_shards(self):
        # Regression for the partition_length clamp: 2 rows, 4 workers.
        program, synced = random_elementwise_program(5, num_instructions=8, vector_length=8)
        expected = _oracle(program, synced)
        values, stats, _ = _dist(program, synced, 4, parallel_serial_threshold=1, parallel_tile_elements=4)
        for actual, reference in zip(values, expected):
            assert np.array_equal(actual, reference, equal_nan=True)


class TestWarmPath:
    def test_warm_flush_ships_descriptors_only(self):
        program, synced = random_elementwise_program(11, num_instructions=12, vector_length=24)
        expected = _oracle(program, synced)
        with config_override(**TINY_TILES, dist_num_workers=2):
            engine = ExecutionEngine(backend="dist", optimize=True)
            engine.execute(program)
            cold_loads = engine.cache_stats()["dist_loads_shipped"]
            result = engine.execute(program)
            values = [result.value(view) for view in synced]
            warm = result.stats
            assert engine.cache_stats()["dist_loads_shipped"] == cold_loads
        for actual, reference in zip(values, expected):
            assert np.array_equal(actual, reference, equal_nan=True)
        assert warm.dist_payload_bytes == 0
        assert warm.dist_bytes_migrated == 0
        assert warm.dist_shard_launches > 0
        # Warm control traffic is tiny: descriptors and acks, not arrays.
        assert warm.dist_control_bytes < 16384


class TestWorkerSideChecks:
    def test_plan_checks_run_worker_side_when_enabled(self):
        program, synced = random_elementwise_program(13, num_instructions=10, vector_length=24)
        COUNTERS.reset()
        values, stats, _ = _dist(program, synced, 2, check_ir=True)
        # Structural shard validation always runs; the tiling soundness
        # check piggybacks when check_ir is on.  Both fold into the global
        # check counters through the loaded acks.
        assert stats.plan_checks_run > 0
        assert COUNTERS.snapshot()["plan_checks_run"] > 0
        expected = _oracle(program, synced)
        for actual, reference in zip(values, expected):
            assert np.array_equal(actual, reference, equal_nan=True)


class TestCrashRecovery:
    def test_mid_flush_crash_is_clean_and_recoverable(self):
        with config_override(
            parallel_tile_elements=64,
            parallel_serial_threshold=4,
            dist_num_workers=2,
        ):
            session = Session(backend="dist", optimize=True)
            expected = heat_equation(grid_size=16, iterations=2, session=session).to_numpy()
            backend = session.engine.backend
            backend.inject_worker_crash(0)
            with pytest.raises(DistributedExecutionError):
                heat_equation(grid_size=16, iterations=2, session=session).to_numpy()
            # The session survives: the pool respawns and the same
            # computation completes bitwise-identically.
            recovered = heat_equation(grid_size=16, iterations=2, session=session).to_numpy()
            assert np.array_equal(recovered, expected)

    def test_crash_leaks_no_segments(self):
        with config_override(
            parallel_tile_elements=64,
            parallel_serial_threshold=4,
            dist_num_workers=2,
        ):
            session = Session(backend="dist", optimize=True)
            heat_equation(grid_size=16, iterations=2, session=session).to_numpy()
            backend = session.engine.backend
            backend.inject_worker_crash(1)
            with pytest.raises(DistributedExecutionError):
                heat_equation(grid_size=16, iterations=2, session=session).to_numpy()
            # Workers only ever attach — a dead worker cannot take a
            # segment with it, and the master is alive, so the manifest
            # sweep has nothing to reclaim.
            assert sweep_manifests() == []


class TestBudget:
    def test_budget_exhaustion_is_a_clean_distributed_error(self):
        # A size class nothing else in this suite parks: recycling a parked
        # segment legitimately bypasses the budget (it adds no bytes), so
        # the test must force a *fresh* create.
        program, synced = random_elementwise_program(
            17, num_instructions=12, vector_length=1 << 16
        )
        with pytest.raises(DistributedExecutionError, match="budget"):
            _dist(program, synced, 2, dist_shm_max_bytes=64)
