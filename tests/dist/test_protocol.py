"""The control-channel protocol: framing, validation, payload detection."""

from __future__ import annotations

import numpy as np
import pytest

from repro.dist.protocol import (
    FRAME_FIELDS,
    PROTOCOL_MAGIC,
    PROTOCOL_VERSION,
    ProtocolError,
    array_payload_nbytes,
    decode_frame,
    encode_frame,
    make_frame,
    validate_frame,
)
from repro.utils.errors import DistributedExecutionError


class TestFraming:
    def test_round_trip(self):
        frame = make_frame("step", token="abc", step=3)
        decoded = decode_frame(encode_frame(frame))
        assert decoded == frame

    def test_every_kind_round_trips(self):
        samples = {
            "hello": dict(worker=0, pid=123),
            "load": dict(token="t", payload=b"pickled", check=False),
            "loaded": dict(token="t", plan_checks_run=2),
            "map": dict(token="t", segments={0: ("psm_x", 64)}, scratch=None, halo_mode="overlap"),
            "step": dict(token="t", step=0),
            "complete": dict(step=0, counters={"halo_exchanges": 1}),
            "error": dict(message="boom", traceback="tb"),
            "crash": {},
            "shutdown": {},
        }
        assert set(samples) == set(FRAME_FIELDS)
        for kind, payload in samples.items():
            frame = make_frame(kind, **payload)
            assert decode_frame(encode_frame(frame))["kind"] == kind


class TestValidation:
    def test_bad_magic_rejected(self):
        frame = make_frame("crash")
        frame["magic"] = "not-repro"
        with pytest.raises(ProtocolError, match="magic"):
            validate_frame(frame)

    def test_version_mismatch_rejected(self):
        frame = make_frame("crash")
        frame["version"] = PROTOCOL_VERSION + 1
        with pytest.raises(ProtocolError, match="version"):
            validate_frame(frame)

    def test_unknown_kind_rejected(self):
        with pytest.raises(ProtocolError, match="unknown frame kind"):
            make_frame("teleport")

    def test_missing_required_field_rejected(self):
        with pytest.raises(ProtocolError, match="missing fields"):
            make_frame("step", token="t")  # no step

    def test_non_dict_rejected(self):
        with pytest.raises(ProtocolError):
            validate_frame(["magic", PROTOCOL_MAGIC])

    def test_protocol_error_is_distributed_error(self):
        # Callers catch one exception type for every dist failure mode.
        assert issubclass(ProtocolError, DistributedExecutionError)

    def test_magic_and_version_stamped_by_make_frame(self):
        frame = make_frame("shutdown")
        assert frame["magic"] == PROTOCOL_MAGIC
        assert frame["version"] == PROTOCOL_VERSION


class TestPayloadDetection:
    def test_clean_frames_measure_zero(self):
        frame = make_frame(
            "map", token="t", segments={0: ("psm_x", 64)}, scratch="psm_s", halo_mode="overlap"
        )
        assert array_payload_nbytes(frame) == 0

    def test_array_anywhere_is_counted(self):
        payload = np.zeros(16, dtype=np.float64)
        assert array_payload_nbytes(payload) == 128
        assert array_payload_nbytes({"deep": [{"er": (payload,)}]}) == 128
        frame = make_frame("complete", step=0, counters={"oops": payload})
        assert array_payload_nbytes(frame) == 128

    def test_pickled_bytes_are_not_arrays(self):
        # The cold-path load payload is pickled *structure*; only live
        # ndarrays violate the zero-payload invariant.
        frame = make_frame("load", token="t", payload=b"\x00" * 1024, check=False)
        assert array_payload_nbytes(frame) == 0
