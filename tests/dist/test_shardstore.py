"""The shared-memory shard store: recycling, budget, manifests, sweeping."""

from __future__ import annotations

import json
import os
import subprocess
import sys
from multiprocessing import shared_memory
from pathlib import Path

import numpy as np
import pytest

from repro.dist.shardstore import ShardStore, attach_segment, sweep_manifests
from repro.utils.errors import DistributedExecutionError


@pytest.fixture
def store(tmp_path):
    store = ShardStore(max_bytes=lambda: 1 << 20, directory=tmp_path)
    yield store
    store.close()


def _segment_exists(name: str) -> bool:
    try:
        shm = shared_memory.SharedMemory(name=name)
    except FileNotFoundError:
        return False
    shm.close()
    return True


class TestLifecycle:
    def test_create_returns_writable_buffer(self, store):
        name, buffer = store.create(256)
        assert buffer.nbytes >= 256
        buffer[:256] = 7
        # Another attachment observes the same bytes: it really is shared.
        other = attach_segment(name)
        assert bytes(other.buf[:256]) == b"\x07" * 256
        other.close()

    def test_release_parks_and_create_recycles(self, store):
        name, _ = store.create(256)
        store.release(name)
        again, _ = store.create(256)
        assert again == name
        assert store.segments_created == 1
        assert store.segments_recycled == 1

    def test_different_size_classes_do_not_recycle(self, store):
        name, _ = store.create(256)
        store.release(name)
        other, _ = store.create(1 << 16)
        assert other != name

    def test_stats_shape(self, store):
        store.create(256)
        stats = store.stats()
        assert stats["dist_segments_created"] == 1
        assert stats["dist_segments_active"] == 1
        assert stats["dist_shm_bytes_active"] >= 256
        assert stats["dist_shm_bytes_parked"] == 0

    def test_close_unlinks_everything(self, tmp_path):
        store = ShardStore(max_bytes=lambda: 1 << 20, directory=tmp_path)
        active, _ = store.create(256)
        parked, _ = store.create(1 << 14)
        store.release(parked)
        store.close()
        assert not _segment_exists(active)
        assert not _segment_exists(parked)

    def test_create_after_close_raises(self, store):
        store.close()
        with pytest.raises(DistributedExecutionError, match="closed"):
            store.create(64)


class TestBudget:
    def test_budget_exhaustion_raises_cleanly(self, tmp_path):
        store = ShardStore(max_bytes=lambda: 1 << 12, directory=tmp_path)
        try:
            store.create(1 << 10)
            with pytest.raises(DistributedExecutionError, match="budget"):
                store.create(1 << 12)
        finally:
            store.close()

    def test_parked_segments_are_evicted_for_fresh_ones(self, tmp_path):
        store = ShardStore(max_bytes=lambda: 1 << 12, directory=tmp_path)
        try:
            parked, _ = store.create(1 << 11)
            store.release(parked)
            # A differently-sized request cannot recycle the parked segment
            # and the budget cannot hold both: the parked one must go.
            fresh, _ = store.create((1 << 12) - 2)
            assert fresh != parked
            assert not _segment_exists(parked)
        finally:
            store.close()


class TestManifest:
    def test_manifest_tracks_live_segments(self, store, tmp_path):
        name, _ = store.create(256)
        manifest = json.loads((tmp_path / f"{os.getpid()}.json").read_text())
        assert manifest["pid"] == os.getpid()
        assert name in manifest["segments"]

    def test_sweep_leaves_live_owners_alone(self, store, tmp_path):
        name, _ = store.create(256)
        assert sweep_manifests(tmp_path) == []
        assert _segment_exists(name)

    def test_sweep_reclaims_after_owner_crash(self, tmp_path):
        """A master that dies without cleanup must not leak /dev/shm entries."""
        script = (
            "import os, sys\n"
            "from pathlib import Path\n"
            "from repro.dist.shardstore import ShardStore\n"
            "store = ShardStore(max_bytes=lambda: 1 << 20, directory=Path(sys.argv[1]))\n"
            "name, _ = store.create(4096)\n"
            "print(name, flush=True)\n"
            # Die like a crash: no atexit, no close, manifest left behind.
            "os._exit(9)\n"
        )
        env = dict(os.environ)
        repo_src = str(Path(__file__).resolve().parents[2] / "src")
        env["PYTHONPATH"] = repo_src + os.pathsep + env.get("PYTHONPATH", "")
        result = subprocess.run(
            [sys.executable, "-c", script, str(tmp_path)],
            capture_output=True,
            text=True,
            env=env,
            timeout=60,
        )
        leaked = result.stdout.strip().split()[-1]
        assert _segment_exists(leaked), "subprocess did not actually leak"
        swept = sweep_manifests(tmp_path)
        assert leaked in swept
        assert not _segment_exists(leaked)
        assert list(tmp_path.glob("*.json")) == []


class TestAttachment:
    def test_attach_does_not_adopt_unlink_responsibility(self, store):
        name, buffer = store.create(128)
        buffer[:4] = 42
        shm = attach_segment(name)
        shm.close()
        # Closing an attachment must not unlink the master's segment.
        assert _segment_exists(name)
