"""Tests for the lazy BhArray type and the recording session."""

import numpy as np
import pytest

from repro import frontend as bh
from repro.bytecode.opcodes import OpCode
from repro.frontend.array import BhArray
from repro.frontend.session import Session, get_session, reset_session, set_session
from repro.utils.config import config_override
from repro.utils.errors import FrontendError


@pytest.fixture
def session():
    return reset_session(backend="interpreter", optimize=True)


class TestLazyRecording:
    def test_operations_record_without_executing(self, session):
        a = bh.zeros(10)
        a += 1
        a += 1
        assert session.pending_size() == 3  # identity + 2 adds
        assert session.flush_count == 0

    def test_flush_happens_on_observation(self, session):
        a = bh.zeros(10)
        a += 1
        values = a.to_numpy()
        assert session.flush_count == 1
        assert session.pending_size() == 0
        assert np.all(values == 1.0)

    def test_paper_listing_1_result(self, session):
        a = bh.zeros(10)
        a += 1
        a += 1
        a += 1
        assert np.all(a.to_numpy() == 3.0)

    def test_optimizer_ran_during_flush(self, session):
        a = bh.zeros(10)
        a += 1
        a += 1
        a += 1
        a.to_numpy()
        report = session.last_report
        assert report is not None
        assert report.instructions_before > report.instructions_after

    def test_optimize_disabled_session(self):
        session = reset_session(backend="interpreter", optimize=False)
        a = bh.zeros(10)
        a += 1
        a.to_numpy()
        assert session.last_report is None

    def test_values_survive_across_flushes(self, session):
        a = bh.zeros(4)
        a += 2
        first = a.to_numpy()
        a *= 3
        second = a.to_numpy()
        assert np.all(first == 2.0)
        assert np.all(second == 6.0)
        assert session.flush_count == 2

    def test_flush_of_empty_session_is_noop(self, session):
        assert session.flush() is None

    def test_total_stats_accumulate(self, session):
        a = bh.zeros(8)
        a += 1
        a.to_numpy()
        b = bh.ones(8)
        (b * 2).to_numpy()
        total = session.total_stats()
        assert total.kernel_launches >= 2

    def test_default_session_is_shared(self):
        session = reset_session()
        assert get_session() is session
        replacement = Session()
        set_session(replacement)
        assert get_session() is replacement

    def test_backend_selected_from_config(self):
        with config_override(default_backend="jit"):
            session = Session()
            assert session.backend.name == "jit"


class TestArithmetic:
    def test_add_sub_mul_div(self, session):
        a = bh.full(6, 12.0)
        assert np.all((a + 3).to_numpy() == 15.0)
        assert np.all((a - 2).to_numpy() == 10.0)
        assert np.all((a * 2).to_numpy() == 24.0)
        assert np.all((a / 4).to_numpy() == 3.0)

    def test_reflected_operators(self, session):
        a = bh.full(4, 2.0)
        assert np.all((10 + a).to_numpy() == 12.0)
        assert np.all((10 - a).to_numpy() == 8.0)
        assert np.all((10 * a).to_numpy() == 20.0)
        assert np.all((10 / a).to_numpy() == 5.0)

    def test_power_and_neg_abs(self, session):
        a = bh.full(4, -3.0)
        assert np.all((a ** 2).to_numpy() == 9.0)
        assert np.all((-a).to_numpy() == 3.0)
        assert np.all(abs(a).to_numpy() == 3.0)

    def test_array_array_operations(self, session):
        a = bh.array([1.0, 2.0, 3.0])
        b = bh.array([10.0, 20.0, 30.0])
        assert list((a + b).to_numpy()) == [11.0, 22.0, 33.0]
        assert list((b / a).to_numpy()) == [10.0, 10.0, 10.0]

    def test_inplace_operators_write_same_base(self, session):
        a = bh.zeros(4)
        original_base = a.view.base
        a += 5
        a *= 2
        assert a.view.base is original_base
        assert np.all(a.to_numpy() == 10.0)

    def test_broadcasting_scalar_array(self, session):
        matrix = bh.ones((2, 3))
        row = bh.array([1.0, 2.0, 3.0])
        total = matrix + row
        assert total.shape == (2, 3)
        assert np.allclose(total.to_numpy(), [[2, 3, 4], [2, 3, 4]])

    def test_incompatible_shapes_rejected(self, session):
        with pytest.raises(FrontendError):
            bh.ones(3) + bh.ones(4)

    def test_inplace_shape_growth_rejected(self, session):
        a = bh.ones(3)
        with pytest.raises(FrontendError):
            a += bh.ones((2, 3))

    def test_comparisons_produce_bool_arrays(self, session):
        a = bh.array([1.0, 5.0, 3.0])
        mask = a > 2.5
        assert mask.dtype.is_bool
        assert list(mask.to_numpy()) == [False, True, True]

    def test_mixing_sessions_rejected(self):
        first = Session()
        second = Session()
        a = BhArray.new(4, session=first)
        b = BhArray.new(4, session=second)
        with pytest.raises(FrontendError):
            a + b

    def test_numpy_operand_is_wrapped(self, session):
        a = bh.ones(3)
        result = a + np.array([1.0, 2.0, 3.0])
        assert list(result.to_numpy()) == [2.0, 3.0, 4.0]

    def test_matmul_operator(self, session):
        matrix = bh.array(np.array([[1.0, 2.0], [3.0, 4.0]]))
        vector = bh.array(np.array([1.0, 1.0]))
        assert list((matrix @ vector).to_numpy()) == [3.0, 7.0]


class TestShapeAndScalars:
    def test_properties(self, session):
        a = bh.zeros((3, 4))
        assert a.shape == (3, 4)
        assert a.ndim == 2
        assert a.size == 12
        assert len(a) == 3

    def test_reshape_and_flatten(self, session):
        a = bh.arange(12)
        matrix = a.reshape(3, 4)
        assert matrix.shape == (3, 4)
        assert matrix.flatten().shape == (12,)

    def test_copy_is_independent(self, session):
        a = bh.zeros(4)
        b = a.copy()
        a += 5
        assert np.all(b.to_numpy() == 0.0)
        assert np.all(a.to_numpy() == 5.0)

    def test_transpose(self, session):
        a = bh.array(np.arange(6.0).reshape(2, 3))
        assert a.T.shape == (3, 2)
        assert np.array_equal(a.T.to_numpy(), np.arange(6.0).reshape(2, 3).T)

    def test_item_and_float_conversion(self, session):
        total = bh.array([41.0]) + 1
        assert float(total) == 42.0
        assert int(total) == 42
        assert total.item() == 42.0

    def test_item_requires_single_element(self, session):
        with pytest.raises(FrontendError):
            bh.ones(3).item()

    def test_repr_and_str_show_values(self, session):
        a = bh.full(3, 7.0)
        assert "7." in str(a)
        assert "BhArray" in repr(a)


class TestFreeOnGarbageCollection:
    def test_temporaries_emit_free(self, session):
        a = bh.ones(8)
        result = (a + 1) * 2  # the (a + 1) temporary dies immediately
        result.to_numpy()
        import gc

        gc.collect()
        frees = [i for i in session.last_report.original if i.opcode is OpCode.BH_FREE]
        assert len(frees) >= 1

    def test_named_arrays_are_not_freed(self, session):
        a = bh.ones(8)
        kept = a + 1
        kept.to_numpy()
        freed_bases = {
            view.base
            for instruction in session.last_report.original
            if instruction.opcode is OpCode.BH_FREE
            for view in instruction.views()
        }
        assert kept.view.base not in freed_bases
        assert a.view.base not in freed_bases

    def test_slices_do_not_free_parent_base(self, session):
        a = bh.ones(8)
        a[0:4].to_numpy()  # temporary slice object dies after this line
        import gc

        gc.collect()
        a += 1  # the base must still be usable
        assert np.all(a.to_numpy() == 2.0)
