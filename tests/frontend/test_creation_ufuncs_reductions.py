"""Tests for creation functions, ufuncs, reductions and random generation."""

import math

import numpy as np
import pytest

from repro import frontend as bh
from repro.bytecode.dtypes import float64, int64
from repro.frontend.session import reset_session
from repro.utils.errors import FrontendError


@pytest.fixture
def session():
    return reset_session(backend="interpreter", optimize=True)


class TestCreation:
    def test_zeros_ones_full(self, session):
        assert np.all(bh.zeros(5).to_numpy() == 0.0)
        assert np.all(bh.ones(5).to_numpy() == 1.0)
        assert np.all(bh.full(5, 7.5).to_numpy() == 7.5)

    def test_2d_creation(self, session):
        grid = bh.zeros((3, 4))
        assert grid.shape == (3, 4)
        assert grid.to_numpy().shape == (3, 4)

    def test_like_variants(self, session):
        template = bh.zeros((2, 3), dtype=int64)
        assert bh.zeros_like(template).shape == (2, 3)
        assert bh.ones_like(template).dtype is int64
        assert bh.empty_like(template).shape == (2, 3)

    def test_empty_is_allocated_but_not_initialised(self, session):
        empty = bh.empty(4)
        assert session.pending_size() == 0  # no byte-code recorded
        assert empty.to_numpy().shape == (4,)

    def test_arange_variants(self, session):
        assert list(bh.arange(5).to_numpy()) == [0, 1, 2, 3, 4]
        assert list(bh.arange(2, 6).to_numpy()) == [2, 3, 4, 5]
        assert list(bh.arange(0, 10, 2.5).to_numpy()) == [0.0, 2.5, 5.0, 7.5]

    def test_arange_invalid(self, session):
        with pytest.raises(FrontendError):
            bh.arange(5, 5)
        with pytest.raises(FrontendError):
            bh.arange(0, 10, 0)

    def test_linspace(self, session):
        values = bh.linspace(0.0, 1.0, 5).to_numpy()
        assert np.allclose(values, [0.0, 0.25, 0.5, 0.75, 1.0])

    def test_linspace_requires_two_points(self, session):
        with pytest.raises(FrontendError):
            bh.linspace(0.0, 1.0, 1)

    def test_array_from_list_and_numpy(self, session):
        assert list(bh.array([1, 2, 3]).to_numpy()) == [1, 2, 3]
        matrix = bh.array(np.arange(6.0).reshape(2, 3))
        assert matrix.shape == (2, 3)

    def test_array_with_explicit_dtype(self, session):
        converted = bh.array([1.7, 2.2], dtype=int64)
        assert converted.dtype is int64
        assert list(converted.to_numpy()) == [1, 2]

    def test_invalid_shape_rejected(self, session):
        with pytest.raises(FrontendError):
            bh.zeros(0)


class TestUfuncs:
    def test_sqrt_exp_log(self, session):
        a = bh.full(4, 4.0)
        assert np.allclose(bh.sqrt(a).to_numpy(), 2.0)
        assert np.allclose(bh.log(bh.exp(a)).to_numpy(), 4.0)

    def test_trigonometry(self, session):
        angles = bh.array([0.0, math.pi / 2])
        assert np.allclose(bh.sin(angles).to_numpy(), [0.0, 1.0])
        assert np.allclose(bh.cos(angles).to_numpy(), [1.0, 0.0], atol=1e-12)
        assert np.allclose(bh.arctan(bh.tan(bh.array([0.5]))).to_numpy(), [0.5])

    def test_arcsin_arccos(self, session):
        values = bh.array([0.0, 0.5, 1.0])
        assert np.allclose(bh.arcsin(values).to_numpy(), np.arcsin([0.0, 0.5, 1.0]))
        assert np.allclose(bh.arccos(values).to_numpy(), np.arccos([0.0, 0.5, 1.0]))

    def test_erf_matches_scipy(self, session):
        from scipy.special import erf as scipy_erf

        values = bh.array([-1.0, 0.0, 0.5, 2.0])
        assert np.allclose(bh.erf(values).to_numpy(), scipy_erf([-1.0, 0.0, 0.5, 2.0]))

    def test_binary_ufuncs(self, session):
        a = bh.array([1.0, 5.0, 3.0])
        b = bh.array([4.0, 2.0, 3.0])
        assert list(bh.maximum(a, b).to_numpy()) == [4.0, 5.0, 3.0]
        assert list(bh.minimum(a, b).to_numpy()) == [1.0, 2.0, 3.0]
        assert list(bh.add(a, 1).to_numpy()) == [2.0, 6.0, 4.0]
        assert list(bh.power(a, 2).to_numpy()) == [1.0, 25.0, 9.0]

    def test_binary_ufunc_with_scalar_left(self, session):
        a = bh.array([1.0, 2.0])
        assert list(bh.subtract(10.0, a).to_numpy()) == [9.0, 8.0]

    def test_ufunc_requires_arrays(self, session):
        with pytest.raises(FrontendError):
            bh.sqrt(4.0)
        with pytest.raises(FrontendError):
            bh.add(1.0, 2.0)

    def test_negative_and_absolute(self, session):
        a = bh.array([-2.0, 3.0])
        assert list(bh.negative(a).to_numpy()) == [2.0, -3.0]
        assert list(bh.absolute(a).to_numpy()) == [2.0, 3.0]

    def test_unary_float_promotion_of_integer_input(self, session):
        a = bh.array([1, 4, 9])
        result = bh.sqrt(a)
        assert result.dtype is float64
        assert np.allclose(result.to_numpy(), [1.0, 2.0, 3.0])


class TestReductions:
    def test_full_sum_prod_max_min(self, session):
        a = bh.array([1.0, 2.0, 3.0, 4.0])
        assert float(bh.sum(a)) == 10.0
        assert float(bh.prod(a)) == 24.0
        assert float(bh.amax(a)) == 4.0
        assert float(bh.amin(a)) == 1.0
        assert float(bh.mean(a)) == 2.5

    def test_method_forms(self, session):
        a = bh.array([1.0, 2.0, 3.0, 4.0])
        assert float(a.sum()) == 10.0
        assert float(a.prod()) == 24.0
        assert float(a.max()) == 4.0
        assert float(a.min()) == 1.0
        assert float(a.mean()) == 2.5

    def test_axis_reductions(self, session):
        matrix = bh.array(np.arange(6.0).reshape(2, 3))
        assert list(matrix.sum(axis=0).to_numpy()) == [3.0, 5.0, 7.0]
        assert list(matrix.sum(axis=1).to_numpy()) == [3.0, 12.0]
        assert list(matrix.max(axis=0).to_numpy()) == [3.0, 4.0, 5.0]
        assert list(matrix.mean(axis=1).to_numpy()) == [1.0, 4.0]

    def test_negative_axis(self, session):
        matrix = bh.array(np.arange(6.0).reshape(2, 3))
        assert list(matrix.sum(axis=-1).to_numpy()) == [3.0, 12.0]

    def test_axis_out_of_range(self, session):
        with pytest.raises(FrontendError):
            bh.ones((2, 3)).sum(axis=2)

    def test_full_2d_reduction(self, session):
        matrix = bh.ones((4, 5))
        assert float(matrix.sum()) == 20.0

    def test_reduction_of_boolean_mask_counts(self, session):
        a = bh.array([0.5, 1.5, 2.5, 3.5])
        count = ((a > 1.0) * 1.0).sum()
        assert float(count) == 3.0


class TestRandom:
    def test_values_in_unit_interval(self, session):
        values = bh.random.random(1000).to_numpy()
        assert values.shape == (1000,)
        assert np.all((values >= 0.0) & (values < 1.0))

    def test_seed_makes_streams_reproducible(self, session):
        bh.random.seed(7)
        first = bh.random.random(64).to_numpy()
        bh.random.seed(7)
        second = bh.random.random(64).to_numpy()
        assert np.array_equal(first, second)

    def test_rand_shape_spelling(self, session):
        assert bh.random.rand(3, 4).shape == (3, 4)

    def test_uniform_range(self, session):
        bh.random.seed(11)
        values = bh.random.uniform(5.0, 9.0, 512).to_numpy()
        assert values.min() >= 5.0
        assert values.max() < 9.0

    def test_unseeded_streams_differ(self, session):
        first = bh.random.random(64).to_numpy()
        second = bh.random.random(64).to_numpy()
        assert not np.array_equal(first, second)
