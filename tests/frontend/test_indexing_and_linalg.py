"""Tests for basic slicing/assignment and the front-end linear algebra."""

import numpy as np
import pytest

from repro import frontend as bh
from repro.bytecode.opcodes import OpCode
from repro.frontend import linalg
from repro.frontend.session import reset_session
from repro.linalg.util import random_well_conditioned
from repro.utils.errors import FrontendError


@pytest.fixture
def session():
    return reset_session(backend="interpreter", optimize=True)


class TestIndexing:
    def test_1d_slice_reads(self, session):
        a = bh.arange(10)
        assert list(a[2:6].to_numpy()) == [2, 3, 4, 5]
        assert list(a[::3].to_numpy()) == [0, 3, 6, 9]
        assert list(a[7:].to_numpy()) == [7, 8, 9]

    def test_integer_index_returns_single_element_view(self, session):
        a = bh.arange(10)
        assert float(a[3]) == 3.0
        assert float(a[-1]) == 9.0

    def test_2d_slicing(self, session):
        matrix = bh.array(np.arange(20.0).reshape(4, 5))
        inner = matrix[1:3, 2:4]
        assert inner.shape == (2, 2)
        assert np.array_equal(inner.to_numpy(), [[7.0, 8.0], [12.0, 13.0]])

    def test_row_and_column_selection(self, session):
        matrix = bh.array(np.arange(12.0).reshape(3, 4))
        assert list(matrix[1].to_numpy()) == [4.0, 5.0, 6.0, 7.0]
        assert list(matrix[:, 2].to_numpy()) == [2.0, 6.0, 10.0]

    def test_slices_share_storage_with_parent(self, session):
        a = bh.zeros(10)
        a[0:5] = 3.0
        a[5:] = 7.0
        values = a.to_numpy()
        assert np.all(values[:5] == 3.0)
        assert np.all(values[5:] == 7.0)

    def test_setitem_with_array_value(self, session):
        grid = bh.zeros((4, 4))
        grid[1:3, 1:3] = bh.ones((2, 2)) * 9.0
        values = grid.to_numpy()
        assert values[1, 1] == 9.0
        assert values[0, 0] == 0.0

    def test_out_of_bounds_index(self, session):
        a = bh.arange(5)
        with pytest.raises(FrontendError):
            a[7]

    def test_too_many_indices(self, session):
        with pytest.raises(FrontendError):
            bh.arange(5)[1, 2]

    def test_negative_step_unsupported(self, session):
        with pytest.raises(FrontendError):
            bh.arange(5)[::-1]

    def test_fancy_indexing_unsupported(self, session):
        with pytest.raises(FrontendError):
            bh.arange(5)[[0, 2]]

    def test_stencil_expression(self, session):
        # One Jacobi step over a tiny grid, checked against NumPy.
        data = np.arange(25.0).reshape(5, 5)
        grid = bh.array(data)
        average = (
            grid[0:-2, 1:-1] + grid[2:, 1:-1] + grid[1:-1, 0:-2] + grid[1:-1, 2:]
        ) * 0.25
        expected = (data[0:-2, 1:-1] + data[2:, 1:-1] + data[1:-1, 0:-2] + data[1:-1, 2:]) * 0.25
        assert np.allclose(average.to_numpy(), expected)


class TestFrontendLinalg:
    def test_matmul_matrix_vector(self, session):
        matrix = bh.array(np.array([[1.0, 2.0], [3.0, 4.0]]))
        vector = bh.array(np.array([1.0, 2.0]))
        assert list(linalg.matmul(matrix, vector).to_numpy()) == [5.0, 11.0]

    def test_matmul_matrix_matrix(self, session):
        a = bh.array(np.arange(6.0).reshape(2, 3))
        b = bh.array(np.arange(6.0).reshape(3, 2))
        assert np.array_equal(
            linalg.matmul(a, b).to_numpy(), np.arange(6.0).reshape(2, 3) @ np.arange(6.0).reshape(3, 2)
        )

    def test_matmul_shape_checks(self, session):
        with pytest.raises(FrontendError):
            linalg.matmul(bh.ones((2, 3)), bh.ones((2, 3)))
        with pytest.raises(FrontendError):
            linalg.matmul(bh.ones(3), bh.ones(3))

    def test_inv_matches_numpy(self, session):
        matrix_data = random_well_conditioned(6, seed=4)
        inverse = linalg.inv(bh.array(matrix_data))
        assert np.allclose(inverse.to_numpy(), np.linalg.inv(matrix_data))

    def test_inv_requires_square(self, session):
        with pytest.raises(FrontendError):
            linalg.inv(bh.ones((2, 3)))

    def test_solve_matches_numpy(self, session):
        matrix_data = random_well_conditioned(8, seed=5)
        rhs_data = np.arange(8.0)
        solution = linalg.solve(bh.array(matrix_data), bh.array(rhs_data))
        assert np.allclose(solution.to_numpy(), np.linalg.solve(matrix_data, rhs_data))

    def test_solve_shape_checks(self, session):
        with pytest.raises(FrontendError):
            linalg.solve(bh.ones((3, 3)), bh.ones(4))

    def test_lu_packed_factorisation(self, session):
        matrix_data = random_well_conditioned(5, seed=6)
        packed = linalg.lu(bh.array(matrix_data)).to_numpy()
        assert packed.shape == (5, 5)

    def test_inverse_matmul_idiom_is_rewritten(self, session):
        matrix_data = random_well_conditioned(10, seed=7)
        rhs_data = np.random.default_rng(7).standard_normal(10)
        solution = linalg.inv(bh.array(matrix_data)) @ bh.array(rhs_data)
        values = solution.to_numpy()
        report = session.last_report
        assert report.optimized.count(OpCode.BH_LU_SOLVE) == 1
        assert report.optimized.count(OpCode.BH_MATRIX_INVERSE) == 0
        assert np.allclose(values, np.linalg.solve(matrix_data, rhs_data))

    def test_inverse_reuse_prevents_rewrite(self, session):
        matrix_data = random_well_conditioned(10, seed=8)
        rhs_data = np.random.default_rng(8).standard_normal(10)
        inverse = linalg.inv(bh.array(matrix_data))
        solution = inverse @ bh.array(rhs_data)
        row_sums = inverse.sum(axis=0)
        values = solution.to_numpy()
        report = session.last_report
        assert report.optimized.count(OpCode.BH_MATRIX_INVERSE, include_fused=True) == 1
        assert np.allclose(values, np.linalg.solve(matrix_data, rhs_data))
        assert np.allclose(row_sums.to_numpy(), np.linalg.inv(matrix_data).sum(axis=0))

    def test_dot_alias_and_transpose(self, session):
        matrix = bh.array(np.array([[1.0, 2.0], [3.0, 4.0]]))
        vector = bh.array(np.array([1.0, 0.0]))
        assert list(linalg.dot(matrix, vector).to_numpy()) == [1.0, 3.0]
        assert np.array_equal(
            linalg.transpose(matrix).to_numpy(), np.array([[1.0, 3.0], [2.0, 4.0]])
        )
