"""End-to-end integration tests across backends, optimizer and front-end."""

import numpy as np
import pytest

from repro import frontend as bh
from repro.cluster import ClusterExecutor
from repro.core.pipeline import optimize
from repro.core.verifier import SemanticVerifier
from repro.frontend.session import reset_session
from repro.runtime import FusingJIT, NumPyInterpreter, SimulatedAccelerator
from repro.utils.config import config_override
from repro.workloads import (
    elementwise_chain,
    linear_solve_program,
    power_program,
    repeated_constant_add,
    random_elementwise_program,
)

ALL_BACKENDS = [NumPyInterpreter, FusingJIT, SimulatedAccelerator]


class TestBackendsAgree:
    @pytest.mark.parametrize("backend_cls", ALL_BACKENDS)
    def test_constant_add_workload(self, backend_cls):
        program, out = repeated_constant_add(512, repeats=4)
        reference = NumPyInterpreter().execute(program).value(out)
        assert np.allclose(backend_cls().execute(program).value(out), reference)

    @pytest.mark.parametrize("backend_cls", ALL_BACKENDS)
    def test_optimized_programs_give_identical_results(self, backend_cls):
        program, out = elementwise_chain(256, length=10)
        optimized = optimize(program).optimized
        reference = NumPyInterpreter().execute(program).value(out)
        assert np.allclose(backend_cls().execute(optimized).value(out), reference)

    def test_cluster_agrees_with_interpreter_on_optimized_program(self):
        program, out, memory = power_program(512, 9)
        optimized = optimize(program).optimized
        reference = NumPyInterpreter().execute(program, memory.clone()).value(out)
        clustered = ClusterExecutor(num_workers=4).execute(optimized, memory.clone()).value(out)
        assert np.allclose(reference, clustered)

    @pytest.mark.parametrize("seed", [1, 17, 99])
    def test_random_programs_agree_across_backends(self, seed):
        program, synced = random_elementwise_program(seed, num_instructions=8)
        results = {}
        for backend_cls in ALL_BACKENDS:
            result = backend_cls().execute(program)
            results[backend_cls.__name__] = [result.value(view) for view in synced]
        baseline = results["NumPyInterpreter"]
        for name, values in results.items():
            for expected, actual in zip(baseline, values):
                assert np.allclose(expected, actual, equal_nan=True), name


class TestOptimizerEndToEnd:
    def test_every_workload_survives_verification(self):
        workloads = [
            repeated_constant_add(64, repeats=6)[0],
            elementwise_chain(64, length=12)[0],
            power_program(64, 11)[0],
            linear_solve_program(12)[0],
        ]
        verifier = SemanticVerifier()
        for program in workloads:
            report = optimize(program)
            verifier.check(program, report.optimized)

    def test_optimizer_reduces_kernel_count_on_all_workloads(self):
        workloads = [
            repeated_constant_add(64, repeats=6)[0],
            elementwise_chain(64, length=12)[0],
        ]
        for program in workloads:
            report = optimize(program)
            assert report.optimized.num_kernels() < program.num_kernels()
        # the power workload starts as a single kernel; expansion plus fusion
        # must not increase the launch count while removing the pow op
        program, _, _ = power_program(64, 16)
        report = optimize(program)
        assert report.optimized.num_kernels() <= program.num_kernels()
        from repro.bytecode.opcodes import OpCode

        assert report.optimized.count(OpCode.BH_POWER, include_fused=True) == 0

    def test_verification_flag_in_config(self):
        program, _ = repeated_constant_add(32, repeats=3)
        with config_override(verify_rewrites=True):
            report = optimize(program)
        assert report.verified is True


class TestFrontendAcrossBackends:
    @pytest.mark.parametrize("backend_name", ["interpreter", "jit", "simulator"])
    def test_same_script_same_answer(self, backend_name):
        reset_session(backend=backend_name, optimize=True)
        bh.random.seed(31)
        x = bh.random.random(1000)
        y = (x * 2.0 + 1.0) ** 3
        total = float(y.sum())
        reset_session(backend="interpreter", optimize=False)
        bh.random.seed(31)
        x_ref = bh.random.random(1000)
        y_ref = (x_ref * 2.0 + 1.0) ** 3
        assert total == pytest.approx(float(y_ref.sum()), rel=1e-9)

    def test_multi_flush_session_consistency(self):
        session = reset_session(backend="jit", optimize=True)
        a = bh.zeros(64)
        a += 1
        first = a.to_numpy()
        b = a * 10
        second = b.to_numpy()
        a += 1
        third = a.to_numpy()
        assert np.all(first == 1.0)
        assert np.all(second == 10.0)
        assert np.all(third == 2.0)
        assert session.flush_count == 3

    def test_optimizer_and_no_optimizer_agree_on_mixed_pipeline(self):
        def pipeline():
            bh.random.seed(77)
            data = bh.random.random(2000)
            shifted = data - 0.5
            squared = shifted ** 2
            scaled = squared * 4.0 + 1.0
            return float(scaled.sum()), float(scaled.max())

        reset_session(backend="interpreter", optimize=False)
        expected = pipeline()
        reset_session(backend="interpreter", optimize=True)
        actual = pipeline()
        assert actual == pytest.approx(expected, rel=1e-9)
