"""Smoke tests that run every example script's ``main()`` end to end.

The examples are part of the public deliverable; these tests keep them
working as the library evolves.  Sizes are kept small by monkey-patching the
example parameters where needed — the point is that the code paths run, not
that they run long.
"""

import importlib.util
import sys
from pathlib import Path

import pytest

EXAMPLES_DIR = Path(__file__).resolve().parents[2] / "examples"


def load_example(name: str):
    """Import an example script as a module."""
    path = EXAMPLES_DIR / f"{name}.py"
    spec = importlib.util.spec_from_file_location(f"examples_{name}", path)
    module = importlib.util.module_from_spec(spec)
    sys.modules[spec.name] = module
    spec.loader.exec_module(module)
    return module


class TestExamplesRun:
    def test_quickstart(self, capsys):
        load_example("quickstart").main()
        output = capsys.readouterr().out
        assert "BH_ADD" in output
        assert "Result" in output

    def test_power_expansion(self, capsys):
        module = load_example("power_expansion")
        module.describe_chains(10)
        module.run_strategy(10, 10_000, "power_of_two")
        module.main()
        output = capsys.readouterr().out
        assert "BH_MULTIPLY" in output
        assert "power_of_two" in output

    def test_linear_solve(self, capsys):
        load_example("linear_solve").main()
        output = capsys.readouterr().out
        assert "BH_LU_SOLVE" in output
        assert "expected 0" in output

    def test_heat_equation(self, capsys):
        module = load_example("heat_equation")
        baseline = module.run(32, 3, optimize=False)
        optimized = module.run(32, 3, optimize=True)
        assert abs(baseline["checksum"] - optimized["checksum"]) < 1e-6
        assert optimized["kernels"] <= baseline["kernels"]

    def test_black_scholes(self, capsys):
        module = load_example("black_scholes")
        baseline = module.price(5_000, optimize=False)
        optimized = module.price(5_000, optimize=True)
        assert baseline["mean_price"] == pytest.approx(optimized["mean_price"], rel=1e-9)
        assert optimized["kernels"] < baseline["kernels"]

    def test_image_pipeline(self, capsys):
        module = load_example("image_pipeline")
        baseline = module.run(32, 32, 2, optimize=False)
        optimized = module.run(32, 32, 2, optimize=True)
        assert baseline["foreground"] == pytest.approx(optimized["foreground"], abs=1e-12)

    def test_cluster_scaling(self, capsys):
        load_example("cluster_scaling").main()
        output = capsys.readouterr().out
        assert "workers" in output
        assert "speedup" in output
