"""Integration tests reproducing the paper's listings and equations verbatim.

Every artifact of the paper's Sections 2-3 is checked end to end:

* Listing 1 / 2: the Python program and the byte-code it records.
* Listing 3: the constant-merged byte-code.
* Equation 1 / Listings 4-5: power expansion, naive and square-and-multiply.
* Equation 2: the linear-solve rewrite with its "not used elsewhere" caveat.
"""

import numpy as np
import pytest

from repro import format_program, optimize, parse_program
from repro import frontend as bh
from repro.bytecode.opcodes import OpCode
from repro.core.addition_chains import naive_chain, power_of_two_chain
from repro.core.power_expansion import expand_power
from repro.frontend.session import reset_session
from repro.runtime.interpreter import NumPyInterpreter
from repro.workloads import power_program


class TestListing1And2:
    """The Python program of Listing 1 records the byte-code of Listing 2."""

    def test_recorded_bytecode_matches_listing_2(self):
        session = reset_session(backend="interpreter", optimize=False)
        a = bh.zeros(10)
        a += 1
        a += 1
        a += 1
        recorded = format_program(session.pending)
        expected_opcodes = [
            OpCode.BH_IDENTITY,
            OpCode.BH_ADD,
            OpCode.BH_ADD,
            OpCode.BH_ADD,
        ]
        assert [instr.opcode for instr in session.pending] == expected_opcodes
        # every add reads and writes the same full view of the same register,
        # with the constant 1, exactly as the listing shows
        for add in list(session.pending)[1:]:
            assert add.out.same_view(add.input_views[0])
            assert add.constant.value == 1
        assert "BH_ADD" in recorded and "[0:10:1]" in recorded

    def test_printed_result_matches_listing_1(self):
        reset_session(backend="interpreter", optimize=False)
        a = bh.zeros(10)
        a += 1
        a += 1
        a += 1
        assert np.array_equal(a.to_numpy(), np.full(10, 3.0))


class TestListing3:
    """The optimizer contracts Listing 2 into Listing 3."""

    LISTING_2 = """
    BH_IDENTITY a0[0:10:1] 0
    BH_ADD a0[0:10:1] a0[0:10:1] 1
    BH_ADD a0[0:10:1] a0[0:10:1] 1
    BH_ADD a0[0:10:1] a0[0:10:1] 1
    BH_SYNC a0[0:10:1]
    """

    def test_three_adds_merge_into_one_add_of_three(self):
        program = parse_program(self.LISTING_2)
        report = optimize(program, enabled_passes=["constant_merge"])
        optimized = report.optimized
        assert len(optimized) == 3  # identity, one add, sync — Listing 3
        add = [i for i in optimized if i.opcode is OpCode.BH_ADD][0]
        assert add.constant.value == 3

    def test_optimized_program_produces_the_same_vector(self):
        program = parse_program(self.LISTING_2)
        report = optimize(program)
        out_view = program.synced_views()[0]
        original = NumPyInterpreter().execute(program).value(out_view)
        optimized = NumPyInterpreter().execute(report.optimized).value(out_view)
        assert np.array_equal(original, optimized)


class TestEquation1AndListings4And5:
    """Power expansion: x^10 as 9 multiplies (naive) or 5 (result reuse)."""

    def test_equation_1_power_equals_repeated_multiplication(self):
        # x^n == prod of n copies of x for natural n — checked numerically.
        program, out, memory = power_program(32, 7)
        x = memory.read_view(program[0].input_views[0])
        result = NumPyInterpreter().execute(program, memory.clone()).value(out)
        assert np.allclose(result, np.prod(np.stack([x] * 7), axis=0))

    def test_listing_4_nine_multiplies(self):
        assert naive_chain(10).num_multiplies == 9
        program, _, _ = power_program(16, 10)
        expanded = expand_power(program[0], strategy="naive")
        assert len(expanded) == 9
        assert all(i.opcode is OpCode.BH_MULTIPLY for i in expanded)

    def test_listing_5_five_multiplies_via_result_reuse(self):
        chain = power_of_two_chain(10)
        assert chain.values == (1, 2, 4, 8, 9, 10)
        program, _, _ = power_program(16, 10)
        expanded = expand_power(program[0], strategy="power_of_two")
        assert len(expanded) == 5
        # the listing's exact dataflow: a1 = a0*a0; a1 = a1*a1; a1 = a1*a1;
        # a1 = a1*a0; a1 = a1*a0
        out = program[0].out
        origin = program[0].input_views[0]
        expected_inputs = [
            (origin, origin),
            (out, out),
            (out, out),
            (out, origin),
            (out, origin),
        ]
        for instruction, (left, right) in zip(expanded, expected_inputs):
            assert instruction.out.same_view(out)
            assert instruction.input_views[0].same_view(left)
            assert instruction.input_views[1].same_view(right)

    def test_frontend_power_is_expanded_by_default(self):
        session = reset_session(backend="interpreter", optimize=True)
        x = bh.full(64, 1.01)
        y = x ** 10
        values = y.to_numpy()
        report = session.last_report
        assert report.optimized.count(OpCode.BH_POWER, include_fused=True) == 0
        assert report.optimized.count(OpCode.BH_MULTIPLY, include_fused=True) == 5
        assert np.allclose(values, 1.01 ** 10)


class TestEquation2:
    """x = inv(A) @ b is rewritten to an LU solve unless the inverse is reused."""

    def test_idiom_rewritten_and_correct(self):
        from repro.linalg.util import random_well_conditioned

        session = reset_session(backend="interpreter", optimize=True)
        matrix_data = random_well_conditioned(32, seed=1)
        rhs_data = np.random.default_rng(1).standard_normal(32)
        x = bh.linalg.inv(bh.array(matrix_data)) @ bh.array(rhs_data)
        values = x.to_numpy()
        report = session.last_report
        assert report.optimized.count(OpCode.BH_LU_SOLVE) == 1
        assert report.optimized.count(OpCode.BH_MATRIX_INVERSE) == 0
        assert np.allclose(values, np.linalg.solve(matrix_data, rhs_data))

    def test_paper_caveat_inverse_used_elsewhere(self):
        """"only faster, if we do not use the inverse for anything else"""
        from repro.linalg.util import random_well_conditioned

        session = reset_session(backend="interpreter", optimize=True)
        matrix_data = random_well_conditioned(16, seed=2)
        rhs_data = np.random.default_rng(2).standard_normal(16)
        inverse = bh.linalg.inv(bh.array(matrix_data))
        x = inverse @ bh.array(rhs_data)
        values = x.to_numpy()
        report = session.last_report
        assert report.optimized.count(OpCode.BH_MATRIX_INVERSE) == 1
        assert report.optimized.count(OpCode.BH_LU_SOLVE) == 0
        assert np.allclose(values, np.linalg.solve(matrix_data, rhs_data))
        # the held inverse must still be observable and correct afterwards
        assert np.allclose(inverse.to_numpy(), np.linalg.inv(matrix_data))
