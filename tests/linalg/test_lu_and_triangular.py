"""Tests for the from-scratch LU factorisation and triangular solves."""

import numpy as np
import pytest

from repro.linalg.lu import (
    apply_pivots,
    lu_factor,
    lu_reconstruct,
    lu_unpack,
    permutation_from_pivots,
)
from repro.linalg.triangular import back_substitution, forward_substitution
from repro.linalg.util import random_well_conditioned
from repro.utils.errors import ExecutionError


class TestLUFactor:
    @pytest.mark.parametrize("n", [1, 2, 3, 8, 17, 40])
    def test_reconstruction(self, n):
        matrix = random_well_conditioned(n, seed=n)
        packed, pivots = lu_factor(matrix)
        assert np.allclose(lu_reconstruct(packed, pivots), matrix)

    def test_unpack_shapes_and_structure(self):
        matrix = random_well_conditioned(5, seed=1)
        packed, _ = lu_factor(matrix)
        lower, upper = lu_unpack(packed)
        assert np.allclose(np.diag(lower), 1.0)
        assert np.allclose(np.triu(lower, k=1), 0.0)
        assert np.allclose(np.tril(upper, k=-1), 0.0)

    def test_known_small_example(self):
        matrix = np.array([[4.0, 3.0], [6.0, 3.0]])
        packed, pivots = lu_factor(matrix)
        lower, upper = lu_unpack(packed)
        permutation = permutation_from_pivots(pivots)
        assert np.allclose(permutation @ matrix, lower @ upper)

    def test_pivoting_handles_zero_leading_entry(self):
        matrix = np.array([[0.0, 1.0], [1.0, 0.0]])
        packed, pivots = lu_factor(matrix)
        assert np.allclose(lu_reconstruct(packed, pivots), matrix)

    def test_singular_matrix_rejected(self):
        singular = np.array([[1.0, 2.0], [2.0, 4.0]])
        with pytest.raises(ExecutionError, match="singular"):
            lu_factor(singular)

    def test_non_square_rejected(self):
        with pytest.raises(ExecutionError):
            lu_factor(np.zeros((2, 3)))

    def test_input_not_modified(self):
        matrix = random_well_conditioned(4, seed=9)
        copy = matrix.copy()
        lu_factor(matrix)
        assert np.array_equal(matrix, copy)

    def test_apply_pivots_matches_permutation_matrix(self):
        matrix = random_well_conditioned(6, seed=2)
        vector = np.arange(6.0)
        _, pivots = lu_factor(matrix)
        permutation = permutation_from_pivots(pivots)
        assert np.allclose(apply_pivots(vector, pivots), permutation @ vector)


class TestTriangularSolves:
    def test_forward_substitution(self):
        lower = np.array([[2.0, 0.0, 0.0], [1.0, 3.0, 0.0], [4.0, 5.0, 6.0]])
        rhs = np.array([2.0, 5.0, 32.0])
        solution = forward_substitution(lower, rhs)
        assert np.allclose(lower @ solution, rhs)

    def test_forward_substitution_unit_diagonal_ignores_diagonal(self):
        lower = np.array([[99.0, 0.0], [2.0, 99.0]])
        rhs = np.array([1.0, 4.0])
        solution = forward_substitution(lower, rhs, unit_diagonal=True)
        assert np.allclose(solution, [1.0, 2.0])

    def test_back_substitution(self):
        upper = np.array([[2.0, 1.0, 1.0], [0.0, 3.0, 2.0], [0.0, 0.0, 4.0]])
        rhs = np.array([7.0, 8.0, 4.0])
        solution = back_substitution(upper, rhs)
        assert np.allclose(upper @ solution, rhs)

    def test_matrix_right_hand_sides(self):
        lower = np.tril(random_well_conditioned(5, seed=3))
        rhs = np.arange(10.0).reshape(5, 2)
        solution = forward_substitution(lower, rhs)
        assert np.allclose(lower @ solution, rhs)

    def test_zero_diagonal_rejected(self):
        with pytest.raises(ExecutionError):
            forward_substitution(np.array([[0.0, 0.0], [1.0, 1.0]]), np.ones(2))
        with pytest.raises(ExecutionError):
            back_substitution(np.array([[1.0, 1.0], [0.0, 0.0]]), np.ones(2))

    def test_shape_mismatch_rejected(self):
        with pytest.raises(ExecutionError):
            forward_substitution(np.eye(3), np.ones(4))
        with pytest.raises(ExecutionError):
            back_substitution(np.zeros((2, 3)), np.ones(2))
