"""Tests for the LU-based solver, the Gauss-Jordan inverse and utilities."""

import numpy as np
import pytest

from repro.linalg import (
    determinant,
    inverse,
    is_singular,
    lu_factor,
    lu_solve,
    matmul,
    random_well_conditioned,
    solve,
    solve_via_inverse,
)
from repro.utils.errors import ExecutionError


class TestSolve:
    @pytest.mark.parametrize("n", [1, 2, 3, 10, 33, 64])
    def test_solution_satisfies_system(self, n):
        matrix = random_well_conditioned(n, seed=n + 100)
        rhs = np.random.default_rng(n).standard_normal(n)
        solution = solve(matrix, rhs)
        assert np.allclose(matrix @ solution, rhs, atol=1e-8)

    def test_matches_numpy_reference(self):
        matrix = random_well_conditioned(20, seed=5)
        rhs = np.arange(20.0)
        assert np.allclose(solve(matrix, rhs), np.linalg.solve(matrix, rhs))

    def test_multiple_right_hand_sides(self):
        matrix = random_well_conditioned(8, seed=6)
        rhs = np.random.default_rng(6).standard_normal((8, 3))
        solution = solve(matrix, rhs)
        assert solution.shape == (8, 3)
        assert np.allclose(matrix @ solution, rhs)

    def test_lu_solve_reuses_factorisation(self):
        matrix = random_well_conditioned(12, seed=7)
        factorisation = lu_factor(matrix)
        for seed in range(3):
            rhs = np.random.default_rng(seed).standard_normal(12)
            assert np.allclose(matrix @ lu_solve(factorisation, rhs), rhs)


class TestInverse:
    @pytest.mark.parametrize("n", [1, 2, 5, 16, 40])
    def test_inverse_times_matrix_is_identity(self, n):
        matrix = random_well_conditioned(n, seed=n + 3)
        assert np.allclose(inverse(matrix) @ matrix, np.eye(n), atol=1e-8)

    def test_matches_numpy_reference(self):
        matrix = random_well_conditioned(10, seed=11)
        assert np.allclose(inverse(matrix), np.linalg.inv(matrix))

    def test_singular_rejected(self):
        with pytest.raises(ExecutionError):
            inverse(np.array([[1.0, 2.0], [2.0, 4.0]]))

    def test_non_square_rejected(self):
        with pytest.raises(ExecutionError):
            inverse(np.zeros((3, 2)))

    def test_solve_via_inverse_agrees_with_lu_solve(self):
        matrix = random_well_conditioned(25, seed=13)
        rhs = np.random.default_rng(13).standard_normal(25)
        assert np.allclose(solve_via_inverse(matrix, rhs), solve(matrix, rhs))


class TestUtilities:
    def test_determinant_matches_numpy(self):
        matrix = random_well_conditioned(7, seed=17)
        assert determinant(matrix) == pytest.approx(np.linalg.det(matrix), rel=1e-9)

    def test_determinant_sign_with_pivoting(self):
        matrix = np.array([[0.0, 1.0], [1.0, 0.0]])
        assert determinant(matrix) == pytest.approx(-1.0)

    def test_is_singular(self):
        assert is_singular(np.array([[1.0, 2.0], [2.0, 4.0]]))
        assert not is_singular(random_well_conditioned(4, seed=19))

    def test_matmul_wrapper(self):
        a = np.arange(6.0).reshape(2, 3)
        b = np.arange(3.0)
        assert np.allclose(matmul(a, b), a @ b)

    def test_random_well_conditioned_is_reproducible(self):
        assert np.array_equal(
            random_well_conditioned(6, seed=1), random_well_conditioned(6, seed=1)
        )
        assert not np.array_equal(
            random_well_conditioned(6, seed=1), random_well_conditioned(6, seed=2)
        )

    def test_random_well_conditioned_not_singular(self):
        for seed in range(5):
            assert not is_singular(random_well_conditioned(12, seed=seed))
