"""Audit: every plan-affecting Config knob is in the plan-cache signature.

The plan cache replays an optimized program, its tile decomposition, its
memory plan and (for the native backend) its pre-compiled kernels whenever
the program fingerprint *and* the config signature match.  A knob that
changes any of those artifacts but is missing from
``repro.runtime.plan._CONFIG_SIGNATURE_FIELDS`` lets a stale plan replay
under new settings — the class of bug is silent wrong-speed or wrong-shape
execution, not a crash, which is why this audit is structural: adding a
``Config`` field forces an explicit decision here.

Every field must appear in exactly one of two sets:

* the signature (``_CONFIG_SIGNATURE_FIELDS``), or
* the exemption list below, each entry justified by *why* a cached plan is
  equally valid under any value of that knob.
"""

from __future__ import annotations

import dataclasses

from repro.runtime.plan import _CONFIG_SIGNATURE_FIELDS, config_signature
from repro.utils.config import Config, config_override

#: Fields that may change without invalidating a cached plan.  A knob
#: belongs here only when the plan's contents (optimized program, tiling,
#: memory directives, compiled kernels) are provably identical under every
#: value of the knob.
EXEMPT_FIELDS = {
    # Selects which backend the front-end asks for; each backend keeps its
    # own plans (the backend name is part of the plan-cache key already).
    "default_backend",
    # Toggles whether the pipeline runs at all; unoptimized flushes bypass
    # the plan cache entirely rather than reading stale optimized plans.
    "optimize",
    # Cache administration: enabling/disabling or resizing the plan cache
    # changes *whether* plans are cached, never what a cached plan contains.
    "plan_cache_enabled",
    "plan_cache_size",
    # Service-layer admission and pooling knobs: they gate *when* a flush
    # is allowed to run and how freed buffers recycle between tenants,
    # never what the optimizer, tiler, memory planner or codegen produce —
    # a plan compiled under any value replays identically under another.
    "service_max_inflight",
    "service_tenant_max_inflight",
    "service_admission_timeout_seconds",
    "service_pool_max_bytes",
    "service_fairness",
    # The static checking layer is read-only: the IR verifier and the
    # plan-artifact checks inspect programs and plans but never rewrite
    # them, so a plan built with checks off is byte-identical to one built
    # with checks on (and a cached plan is re-checked at execution time
    # anyway when the knob is enabled).
    "check_ir",
}


def _config_field_names() -> set:
    return {field.name for field in dataclasses.fields(Config)}


def test_every_config_field_is_classified():
    """Signature ∪ exemptions covers Config exactly, with no overlap."""
    fields = _config_field_names()
    signature = set(_CONFIG_SIGNATURE_FIELDS)
    unclassified = fields - signature - EXEMPT_FIELDS
    assert not unclassified, (
        f"Config field(s) {sorted(unclassified)} are neither in the "
        "plan-cache signature nor explicitly exempted; decide whether a "
        "cached plan survives a change of each knob and classify it"
    )
    stale = (signature | EXEMPT_FIELDS) - fields
    assert not stale, f"signature/exemptions name removed Config field(s): {sorted(stale)}"
    overlap = signature & EXEMPT_FIELDS
    assert not overlap, f"field(s) both signed and exempted: {sorted(overlap)}"


def test_codegen_knobs_are_in_the_signature():
    """The native backend's knobs must invalidate plans when changed."""
    codegen_fields = {name for name in _config_field_names() if name.startswith("codegen_")}
    assert codegen_fields  # the backend exists; its knobs must too
    assert codegen_fields <= set(_CONFIG_SIGNATURE_FIELDS)


def test_signature_value_changes_with_each_signed_field():
    """Changing any signed field produces a different signature value.

    Guards against a field being listed but read incorrectly (e.g. a typo
    that makes ``config_signature`` hash the same value for both settings).
    """
    baseline = config_signature(Config())
    perturbed = {
        "enabled_passes": ["constant_merge"],
        "max_constant_merge_window": 2,
        "power_expansion_limit": 3,
        "fusion_max_kernel_size": 2,
        "fusion_scheduler": "consecutive",
        "fusion_cost_threshold": 1.0,
        "fixed_point_max_iterations": 1,
        "verify_rewrites": True,
        "random_seed": 1234,
        "parallel_num_threads": 3,
        "parallel_tile_elements": 128,
        "parallel_serial_threshold": 2,
        "memory_plan_enabled": False,
        "memory_pool_max_bytes": 0,
        "memory_zero_policy": "always",
        "codegen_enabled": False,
        "codegen_cache_dir": "/tmp/elsewhere",
        "codegen_opt_level": 0,
        "codegen_disk_cache_enabled": False,
        "codegen_threads": 3,
        "codegen_reductions_enabled": False,
        "dist_num_workers": 3,
        "dist_halo_mode": "blocking",
        "dist_shm_max_bytes": 1 << 20,
    }
    assert set(perturbed) == set(_CONFIG_SIGNATURE_FIELDS)
    for name, value in perturbed.items():
        assert getattr(Config(), name) != value, (
            f"perturbation for {name!r} equals the default; pick another value"
        )
        with config_override(**{name: value}):
            assert config_signature() != baseline, (
                f"changing {name!r} did not change the config signature"
            )
