"""Tests for extending the backend registry with user-defined backends."""

import numpy as np
import pytest

from repro.bytecode.builder import ProgramBuilder
from repro.runtime.backend import Backend, get_backend, register_backend
from repro.runtime.instrumentation import ExecutionResult, ExecutionStats
from repro.runtime.interpreter import NumPyInterpreter
from repro.runtime.memory import MemoryManager


class CountingBackend(Backend):
    """A toy backend that delegates to the interpreter but counts executions."""

    name = "counting"

    def __init__(self):
        self.executions = 0
        self._inner = NumPyInterpreter()

    def execute(self, program, memory=None):
        self.executions += 1
        result = self._inner.execute(program, memory)
        result.stats.backend_name = self.name
        return result


@pytest.fixture
def counting_backend():
    backend = CountingBackend()
    register_backend("counting", lambda: backend)
    return backend


class TestCustomBackend:
    def test_registered_backend_resolves_by_name(self, counting_backend):
        assert get_backend("counting") is counting_backend

    def test_custom_backend_executes_programs(self, counting_backend):
        builder = ProgramBuilder()
        v = builder.new_vector(8)
        builder.identity(v, 4)
        builder.multiply(v, v, 2)
        builder.sync(v)
        result = get_backend("counting").execute(builder.build())
        assert np.all(result.value(v) == 8.0)
        assert counting_backend.executions == 1
        assert result.stats.backend_name == "counting"

    def test_frontend_session_can_use_custom_backend(self, counting_backend):
        from repro import frontend as bh
        from repro.frontend.session import reset_session

        reset_session(backend="counting", optimize=True)
        a = bh.ones(16)
        a *= 3
        assert np.all(a.to_numpy() == 3.0)
        assert counting_backend.executions >= 1

    def test_run_alias(self, counting_backend):
        builder = ProgramBuilder()
        v = builder.new_vector(4)
        builder.identity(v, 1)
        result = counting_backend.run(builder.build())
        assert isinstance(result, ExecutionResult)
        assert isinstance(result.stats, ExecutionStats)
        assert isinstance(result.memory, MemoryManager)
