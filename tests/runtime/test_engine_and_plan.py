"""Tests for the execution engine, program fingerprinting and the plan cache."""

import numpy as np
import pytest

from repro.bytecode.base import BaseArray
from repro.bytecode.builder import ProgramBuilder
from repro.bytecode.instruction import Instruction
from repro.bytecode.opcodes import OpCode
from repro.bytecode.program import Program
from repro.bytecode.view import View
from repro.core.pipeline import default_pipeline
from repro.runtime.engine import ExecutionEngine
from repro.runtime.jit import FusingJIT
from repro.runtime.kernel import Kernel, kernel_structural_key, partition_into_kernels
from repro.runtime.plan import (
    ExecutionPlan,
    PlanCache,
    canonical_program_key,
    config_signature,
    program_fingerprint,
)
from repro.utils.config import config_override
from repro.utils.errors import ExecutionError


def chain_program(size=16, adds=3, constant=1):
    """A fresh identity+add chain; every call allocates new base arrays."""
    builder = ProgramBuilder()
    vector = builder.new_vector(size)
    builder.identity(vector, 0)
    for _ in range(adds):
        builder.add(vector, vector, constant)
    builder.sync(vector)
    return builder.build(), vector


class TestProgramFingerprint:
    def test_stable_across_base_identities(self):
        first, _ = chain_program()
        second, _ = chain_program()
        assert first.bases()[0] is not second.bases()[0]
        assert program_fingerprint(first) == program_fingerprint(second)

    def test_stable_across_repeated_calls(self):
        program, _ = chain_program()
        assert program_fingerprint(program) == program_fingerprint(program)

    def test_sensitive_to_opcode(self):
        add, _ = chain_program(adds=1)
        builder = ProgramBuilder()
        vector = builder.new_vector(16)
        builder.identity(vector, 0)
        builder.multiply(vector, vector, 1)
        builder.sync(vector)
        assert program_fingerprint(add) != program_fingerprint(builder.build())

    def test_sensitive_to_constants(self):
        ones, _ = chain_program(constant=1)
        twos, _ = chain_program(constant=2)
        assert program_fingerprint(ones) != program_fingerprint(twos)

    def test_sensitive_to_shape(self):
        small, _ = chain_program(size=16)
        large, _ = chain_program(size=32)
        assert program_fingerprint(small) != program_fingerprint(large)

    def test_sensitive_to_base_sharing_structure(self):
        # x + x  versus  x + y: same opcodes and geometry, different aliasing.
        x, y, z = BaseArray(8), BaseArray(8), BaseArray(8)
        shared = Program(
            [Instruction(OpCode.BH_ADD, (View.full(z), View.full(x), View.full(x)))]
        )
        distinct = Program(
            [Instruction(OpCode.BH_ADD, (View.full(z), View.full(x), View.full(y)))]
        )
        assert program_fingerprint(shared) != program_fingerprint(distinct)

    def test_fingerprints_fused_payloads(self):
        program, _ = chain_program(adds=4)
        kernel = [k for k in partition_into_kernels(program) if isinstance(k, Kernel)][0]
        fused = Program([kernel.as_instruction(), program[-1]])
        assert program_fingerprint(fused) != program_fingerprint(program)
        assert program_fingerprint(fused) == program_fingerprint(fused)

    def test_canonical_key_returns_bases_in_first_use_order(self):
        program, _ = chain_program()
        _, bases = canonical_program_key(program)
        assert bases == program.bases()


class TestConfigSignature:
    def test_changes_with_optimization_settings(self):
        baseline = config_signature()
        with config_override(power_expansion_limit=2):
            assert config_signature() != baseline
        with config_override(enabled_passes=["constant_merge"]):
            assert config_signature() != baseline
        assert config_signature() == baseline

    def test_ignores_backend_selection(self):
        baseline = config_signature()
        with config_override(default_backend="jit"):
            assert config_signature() == baseline


class TestPlanCache:
    def test_hit_and_miss_counters(self):
        cache = PlanCache(max_plans=4)
        assert cache.get("missing") is None
        plan = _plan_for(*chain_program())
        cache.put("key", plan)
        assert cache.get("key") is plan
        assert cache.hits == 1
        assert cache.misses == 1
        assert plan.hits == 1

    def test_lru_eviction_bound(self):
        cache = PlanCache(max_plans=2)
        plans = {name: _plan_for(*chain_program()) for name in "abc"}
        for name, plan in plans.items():
            cache.put(name, plan)
        assert len(cache) == 2
        assert cache.evictions == 1
        assert cache.get("a") is None  # oldest entry was evicted
        assert cache.get("b") is plans["b"]
        assert cache.get("c") is plans["c"]

    def test_get_refreshes_recency(self):
        cache = PlanCache(max_plans=2)
        cache.put("a", _plan_for(*chain_program()))
        cache.put("b", _plan_for(*chain_program()))
        cache.get("a")
        cache.put("c", _plan_for(*chain_program()))
        assert cache.get("a") is not None
        assert cache.get("b") is None

    def test_rejects_empty_capacity(self):
        with pytest.raises(ValueError):
            PlanCache(max_plans=0)

    def test_stats_shape(self):
        cache = PlanCache(max_plans=3)
        stats = cache.stats()
        assert stats["plan_cache_capacity"] == 3
        assert stats["plan_cache_size"] == 0


def _plan_for(program, vector):
    _, bases = canonical_program_key(program)
    return ExecutionPlan(
        fingerprint=program_fingerprint(program),
        backend_name="interpreter",
        source_bases=bases,
        optimized=program,
    )


class TestExecutionPlanBinding:
    def test_bind_onto_fresh_bases_executes_correctly(self):
        from repro.runtime.interpreter import NumPyInterpreter

        first, _ = chain_program(adds=3)
        plan = _plan_for(first, None)
        second, out = chain_program(adds=3)
        _, bases = canonical_program_key(second)
        bound = plan.bind(bases)
        result = NumPyInterpreter().execute(bound)
        assert np.all(result.value(out) == 3.0)

    def test_bind_is_identity_for_same_bases(self):
        program, _ = chain_program()
        plan = _plan_for(program, None)
        _, bases = canonical_program_key(program)
        bound = plan.bind(bases)
        assert bound.instructions == program.instructions

    def test_bind_allocates_fresh_scratch_bases(self):
        from repro.runtime.interpreter import NumPyInterpreter

        source, out = chain_program(adds=1)
        _, bases = canonical_program_key(source)
        # Hand-build an "optimized" program with an optimizer-introduced
        # scratch base, as the optimal-chain power expansion produces.
        scratch = BaseArray(16)
        optimized = Program(
            [
                Instruction(OpCode.BH_IDENTITY, (View.full(scratch), 2)),
                Instruction(OpCode.BH_ADD, (out, View.full(scratch), View.full(scratch))),
                Instruction(OpCode.BH_SYNC, (out,)),
                Instruction(OpCode.BH_FREE, (View.full(scratch),)),
            ]
        )
        plan = ExecutionPlan(
            fingerprint=program_fingerprint(source),
            backend_name="interpreter",
            source_bases=bases,
            optimized=optimized,
        )
        target, target_out = chain_program(adds=1)
        _, target_bases = canonical_program_key(target)
        bound = plan.bind(target_bases)
        bound_scratch = [b for b in bound.bases() if b not in target_bases]
        assert len(bound_scratch) == 1
        assert bound_scratch[0] is not scratch
        result = NumPyInterpreter().execute(bound)
        assert np.all(result.value(target_out) == 4.0)

    def test_bind_rejects_mismatched_base_count(self):
        program, _ = chain_program()
        plan = _plan_for(program, None)
        with pytest.raises(ExecutionError):
            plan.bind(())


class TestExecutionEngine:
    def test_repeated_programs_hit_the_plan_cache(self):
        engine = ExecutionEngine(backend="interpreter", optimize=True)
        for expected_hit in (False, True, True):
            program, out = chain_program(adds=3)
            result = engine.execute(program)
            assert np.all(result.value(out) == 3.0)
            assert result.stats.plan_cache_hits == (1 if expected_hit else 0)
            assert result.stats.plan_cache_misses == (0 if expected_hit else 1)
        stats = engine.cache_stats()
        assert stats["plan_cache_hits"] == 2
        assert stats["plan_cache_misses"] == 1
        assert stats["plan_cache_size"] == 1

    def test_hits_record_plan_time_and_replayed_report(self):
        engine = ExecutionEngine(backend="interpreter", optimize=True)
        engine.execute(chain_program(adds=3)[0])
        assert engine.last_report is not None and not engine.last_report.cached
        result = engine.execute(chain_program(adds=3)[0])
        assert result.stats.plan_time_seconds >= 0.0
        assert engine.last_report.cached
        assert engine.last_report.total_rewrites > 0
        assert engine.last_report.fingerprint == engine.last_plan.fingerprint

    def test_different_programs_get_different_plans(self):
        engine = ExecutionEngine(backend="interpreter", optimize=True)
        engine.execute(chain_program(adds=2)[0])
        engine.execute(chain_program(adds=5)[0])
        stats = engine.cache_stats()
        assert stats["plan_cache_size"] == 2
        assert stats["plan_cache_hits"] == 0

    def test_config_change_invalidates_cached_plans(self):
        engine = ExecutionEngine(backend="interpreter", optimize=True)
        engine.execute(chain_program()[0])
        with config_override(enabled_passes=["constant_merge"]):
            result = engine.execute(chain_program()[0])
            assert result.stats.plan_cache_misses == 1
        # Back to the original configuration: the original plan still hits.
        result = engine.execute(chain_program()[0])
        assert result.stats.plan_cache_hits == 1

    def test_plan_carries_the_fusion_schedule(self):
        engine = ExecutionEngine(backend="interpreter", optimize=True)
        engine.execute(chain_program(adds=3)[0])
        plan = engine.last_plan
        assert plan.fusion_schedule is not None
        assert plan.fusion_schedule.scheduler == "dag"
        assert plan.fusion_schedule.kernels_after < plan.fusion_schedule.kernels_before
        # Replays hand back the same structural schedule.
        engine.execute(chain_program(adds=3)[0])
        assert engine.last_plan.fusion_schedule is plan.fusion_schedule

    def test_fusion_scheduler_change_invalidates_cached_plans(self):
        engine = ExecutionEngine(backend="interpreter", optimize=True)
        engine.execute(chain_program()[0])
        with config_override(fusion_scheduler="consecutive"):
            result = engine.execute(chain_program()[0])
            assert result.stats.plan_cache_misses == 1
            assert engine.last_plan.fusion_schedule.scheduler == "consecutive"
        with config_override(fusion_cost_threshold=2.0):
            result = engine.execute(chain_program()[0])
            assert result.stats.plan_cache_misses == 1
        # Back to the original configuration: the original plan still hits.
        result = engine.execute(chain_program()[0])
        assert result.stats.plan_cache_hits == 1

    def test_plan_cache_can_be_disabled(self):
        engine = ExecutionEngine(backend="interpreter", optimize=True)
        with config_override(plan_cache_enabled=False):
            for _ in range(2):
                program, out = chain_program()
                result = engine.execute(program)
                assert np.all(result.value(out) == 3.0)
                assert result.stats.plan_cache_hits == 0
                assert result.stats.plan_cache_misses == 0
        assert engine.cache_stats()["plan_cache_size"] == 0

    def test_unoptimized_execution_bypasses_planning(self):
        engine = ExecutionEngine(backend="interpreter", optimize=False)
        program, out = chain_program()
        result = engine.execute(program)
        assert np.all(result.value(out) == 3.0)
        assert result.stats.plan_cache_misses == 0
        assert engine.last_report is None

    def test_prime_seeds_the_cache_without_a_miss(self):
        pipeline = default_pipeline()
        engine = ExecutionEngine(backend="interpreter", optimize=True, pipeline=pipeline)
        program, out = chain_program(adds=3)
        engine.prime(program, pipeline.run(program))
        # A structurally identical program hits immediately.
        second, second_out = chain_program(adds=3)
        result = engine.execute(second)
        assert np.all(result.value(second_out) == 3.0)
        assert result.stats.plan_cache_hits == 1
        assert engine.cache_stats()["plan_cache_misses"] == 0

    def test_backend_instance_is_kept_across_executions(self):
        engine = ExecutionEngine(backend="jit", optimize=True)
        first = engine.backend
        engine.execute(chain_program()[0])
        assert engine.backend is first

    def test_set_backend_switches_and_keeps_plans_separate(self):
        engine = ExecutionEngine(backend="interpreter", optimize=True)
        engine.execute(chain_program()[0])
        engine.set_backend("jit")
        assert isinstance(engine.backend, FusingJIT)
        result = engine.execute(chain_program()[0])
        assert result.stats.plan_cache_misses == 1  # plans are keyed per backend


class TestSessionPlanReuse:
    def test_repeated_flushes_reuse_plans_with_fresh_temporaries(self):
        from repro import frontend as bh
        from repro.frontend.session import reset_session

        session = reset_session(backend="interpreter", optimize=True)
        checks = []
        for _ in range(6):
            a = bh.ones(32)
            b = (a + 1.0) * 2.0
            checks.append(float(b.to_numpy().sum()))
        assert all(value == pytest.approx(128.0) for value in checks)
        stats = session.cache_stats()
        assert stats["plan_cache_hits"] >= 3
        assert session.total_stats().plan_cache_hits >= 3
        assert session.last_report is not None and session.last_report.cached

    def test_frontend_cache_stats_helper(self):
        from repro import frontend as bh

        bh.ones(8).to_numpy()
        stats = bh.cache_stats()
        assert "plan_cache_hits" in stats and "plan_cache_misses" in stats


class TestKernelStructuralCache:
    def test_equivalent_kernels_share_compiled_entries(self):
        jit = FusingJIT()
        first, out_a = chain_program(adds=4)
        second, out_b = chain_program(adds=4)
        result_a = jit.execute(first)
        misses_after_first = jit.cache_misses
        result_b = jit.execute(second)
        assert np.all(result_a.value(out_a) == result_b.value(out_b))
        # The second program compiled nothing new: different temporaries,
        # same canonical structural form.
        assert jit.cache_misses == misses_after_first
        assert jit.cache_hits >= 1
        assert result_b.stats.kernel_cache_hits >= 1
        assert result_b.stats.kernel_cache_misses == 0
        assert jit.cache_stats()["kernel_cache_size"] == 1

    def test_structural_key_distinguishes_aliasing(self):
        x, y, z = BaseArray(8), BaseArray(8), BaseArray(8)
        shared = [Instruction(OpCode.BH_ADD, (View.full(z), View.full(x), View.full(x)))]
        distinct = [Instruction(OpCode.BH_ADD, (View.full(z), View.full(x), View.full(y)))]
        assert kernel_structural_key(shared) != kernel_structural_key(distinct)

    def test_structural_key_tolerates_base_identity(self):
        first, _ = chain_program(adds=2)
        second, _ = chain_program(adds=2)
        kernels_a = [k for k in partition_into_kernels(first) if isinstance(k, Kernel)]
        kernels_b = [k for k in partition_into_kernels(second) if isinstance(k, Kernel)]
        assert kernels_a[0].structural_key() == kernels_b[0].structural_key()

    def test_custom_pipeline_plans_share_when_signature_matches(self):
        pipeline = default_pipeline(enabled_passes=["constant_merge"])
        engine = ExecutionEngine(backend="interpreter", optimize=True, pipeline=pipeline)
        engine.execute(chain_program()[0])
        result = engine.execute(chain_program()[0])
        assert result.stats.plan_cache_hits == 1


class TestPlanCacheInvalidationEdgeCases:
    """Edge cases where a stale plan replay would silently mis-execute."""

    def test_engine_lru_evicts_in_recency_order(self):
        engine = ExecutionEngine(
            backend="interpreter", optimize=True, plan_cache_size=2
        )
        program_a = chain_program(adds=1)[0]
        program_b = chain_program(adds=2)[0]
        program_c = chain_program(adds=3)[0]
        engine.execute(program_a)  # miss: cache [a]
        engine.execute(program_b)  # miss: cache [a, b]
        engine.execute(program_a)  # hit: refresh a -> cache [b, a]
        engine.execute(program_c)  # miss: evicts b (least recent), not a
        assert engine.plan_cache.stats()["plan_cache_evictions"] == 1
        result_a = engine.execute(chain_program(adds=1)[0])
        assert result_a.stats.plan_cache_hits == 1  # a survived
        result_b = engine.execute(chain_program(adds=2)[0])
        assert result_b.stats.plan_cache_misses == 1  # b was evicted

    def test_config_signature_change_mid_session_misses(self):
        from repro.utils.config import get_config, set_config

        engine = ExecutionEngine(backend="interpreter", optimize=True)
        engine.execute(chain_program()[0])
        baseline = get_config()
        # Mutate the *global* configuration mid-session (no context
        # manager): cached plans must stop matching immediately.
        set_config(baseline.replace(power_expansion_limit=2))
        try:
            changed = engine.execute(chain_program()[0])
            assert changed.stats.plan_cache_misses == 1
            assert changed.stats.plan_cache_hits == 0
            # Restoring the configuration restores the original plan.
            set_config(baseline)
            restored = engine.execute(chain_program()[0])
            assert restored.stats.plan_cache_hits == 1
        finally:
            set_config(baseline)

    def test_parallel_tiling_config_is_part_of_the_signature(self):
        baseline = config_signature()
        with config_override(parallel_tile_elements=1024):
            assert config_signature() != baseline
        with config_override(parallel_num_threads=2):
            assert config_signature() != baseline
        with config_override(parallel_serial_threshold=1):
            assert config_signature() != baseline

    def test_rebinding_onto_different_shape_misses(self):
        engine = ExecutionEngine(backend="interpreter", optimize=True)
        small = engine.execute(chain_program(size=16)[0])
        assert small.stats.plan_cache_misses == 1
        large_program, large_vector = chain_program(size=32)
        large = engine.execute(large_program)
        # Same opcodes and constants, different geometry: must be a miss
        # (binding the 16-element plan would write out of bounds).
        assert large.stats.plan_cache_misses == 1
        assert large.stats.plan_cache_hits == 0
        np.testing.assert_array_equal(
            large.value(large_vector), np.full(32, 3.0)
        )

    def test_rebinding_onto_different_dtype_misses(self):
        from repro.bytecode.dtypes import float32, float64

        def typed_program(dtype):
            builder = ProgramBuilder(dtype)
            vector = builder.new_vector(16)
            builder.identity(vector, 0)
            builder.add(vector, vector, 1)
            builder.sync(vector)
            return builder.build(), vector

        engine = ExecutionEngine(backend="interpreter", optimize=True)
        engine.execute(typed_program(float64)[0])
        program32, vector32 = typed_program(float32)
        result = engine.execute(program32)
        assert result.stats.plan_cache_misses == 1
        assert result.stats.plan_cache_hits == 0
        assert result.value(vector32).dtype == np.float32

    def test_bind_refuses_structurally_foreign_bases(self):
        # Safety net below the cache: even if a caller hands bind() the
        # wrong enumeration size, it must raise instead of mis-executing.
        program, vector = chain_program()
        plan = _plan_for(program, vector)
        with pytest.raises(ExecutionError):
            plan.bind(plan.source_bases + (BaseArray(16),))
