"""Tests for the NumPy reference interpreter."""

import numpy as np
import pytest

from repro.bytecode.builder import ProgramBuilder
from repro.bytecode.dtypes import bool_, int64
from repro.bytecode.instruction import Instruction
from repro.bytecode.opcodes import OpCode
from repro.bytecode.program import Program
from repro.bytecode.view import View
from repro.bytecode.base import BaseArray
from repro.runtime.interpreter import NumPyInterpreter
from repro.runtime.memory import MemoryManager
from repro.utils.errors import ExecutionError


def execute(program, memory=None):
    return NumPyInterpreter().execute(program, memory)


class TestElementwise:
    def test_listing_2_semantics(self):
        builder = ProgramBuilder()
        a0 = builder.new_vector(10)
        builder.identity(a0, 0)
        for _ in range(3):
            builder.add(a0, a0, 1)
        builder.sync(a0)
        result = execute(builder.build())
        assert np.all(result.value(a0) == 3.0)

    def test_binary_with_two_views(self):
        builder = ProgramBuilder()
        x = builder.new_vector(4)
        y = builder.new_vector(4)
        z = builder.new_vector(4)
        builder.identity(x, 3)
        builder.identity(y, 4)
        builder.multiply(z, x, y)
        result = execute(builder.build())
        assert np.all(result.value(z) == 12.0)

    @pytest.mark.parametrize(
        "method, expected",
        [
            ("subtract", 1.0),
            ("divide", 1.5),
            ("maximum", 3.0),
            ("minimum", 2.0),
        ],
    )
    def test_binary_opcodes(self, method, expected):
        builder = ProgramBuilder()
        x = builder.new_vector(4)
        out = builder.new_vector(4)
        builder.identity(x, 3)
        getattr(builder, method)(out, x, 2)
        result = execute(builder.build())
        assert np.allclose(result.value(out), expected)

    def test_unary_opcodes(self):
        builder = ProgramBuilder()
        x = builder.new_vector(4)
        out = builder.new_vector(4)
        builder.identity(x, 4)
        builder.sqrt(out, x)
        result = execute(builder.build())
        assert np.allclose(result.value(out), 2.0)

    def test_power(self):
        builder = ProgramBuilder()
        x = builder.new_vector(5)
        y = builder.new_vector(5)
        builder.arange(x)
        builder.power(y, x, 3)
        result = execute(builder.build())
        assert list(result.value(y)) == [0.0, 1.0, 8.0, 27.0, 64.0]

    def test_erf_against_scipy(self):
        from scipy.special import erf as scipy_erf

        builder = ProgramBuilder()
        x = builder.new_vector(8)
        y = builder.new_vector(8)
        builder.arange(x)
        builder.multiply(x, x, 0.25)
        builder.emit_unary(OpCode.BH_ERF, y, x)
        result = execute(builder.build())
        assert np.allclose(result.value(y), scipy_erf(np.arange(8) * 0.25))

    def test_erf_without_scipy_uses_math_fallback(self, monkeypatch):
        # Simulate a scipy-less host through the resolver seam; the
        # fallback path must keep BH_ERF working, not just importing.
        import math

        from repro.runtime import interpreter as interpreter_module

        monkeypatch.setattr(interpreter_module, "_scipy_erf", lambda: None)
        builder = ProgramBuilder()
        x = builder.new_vector(8)
        y = builder.new_vector(8)
        builder.arange(x)
        builder.multiply(x, x, 0.25)
        builder.emit_unary(OpCode.BH_ERF, y, x)
        result = execute(builder.build())
        expected = [math.erf(v * 0.25) for v in range(8)]
        np.testing.assert_allclose(result.value(y), expected, rtol=1e-15)

    def test_erf_fallback_matches_scipy_bitwise_enough(self):
        from scipy.special import erf as scipy_erf

        from repro.runtime.interpreter import _erf, _erf_fallback

        values = np.linspace(-3.0, 3.0, 41)
        np.testing.assert_allclose(
            _erf_fallback(values), scipy_erf(values), rtol=1e-14, atol=1e-15
        )
        # With scipy resolvable, _erf prefers it.
        assert np.array_equal(_erf(values), scipy_erf(values))

    def test_comparison_into_bool_base(self):
        builder = ProgramBuilder()
        x = builder.new_vector(6)
        mask = builder.new_vector(6, dtype=bool_)
        builder.arange(x)
        builder.emit_binary(OpCode.BH_GREATER, mask, x, 2)
        result = execute(builder.build())
        assert list(result.value(mask)) == [False, False, False, True, True, True]

    def test_writes_through_strided_views(self):
        base = BaseArray(10)
        evens = View(base, 0, (5,), (2,))
        odds = View(base, 1, (5,), (2,))
        program = Program(
            [
                Instruction(OpCode.BH_IDENTITY, (evens, 2.0)),
                Instruction(OpCode.BH_IDENTITY, (odds, 7.0)),
            ]
        )
        result = execute(program)
        assert list(result.memory.allocate(base)) == [2.0, 7.0] * 5

    def test_constant_broadcast_into_matrix(self):
        builder = ProgramBuilder()
        matrix = builder.new_matrix(3, 4)
        builder.identity(matrix, 1.5)
        result = execute(builder.build())
        assert result.value(matrix).shape == (3, 4)
        assert np.all(result.value(matrix) == 1.5)


class TestReductionsAndGenerators:
    def test_add_reduce_axis0(self):
        builder = ProgramBuilder()
        matrix = builder.new_matrix(2, 3)
        cols = builder.new_vector(3)
        builder.identity(matrix, 2)
        builder.add_reduce(cols, matrix, axis=0)
        result = execute(builder.build())
        assert np.all(result.value(cols) == 4.0)

    def test_add_reduce_axis1(self):
        builder = ProgramBuilder()
        matrix = builder.new_matrix(2, 3)
        rows = builder.new_vector(2)
        builder.identity(matrix, 2)
        builder.add_reduce(rows, matrix, axis=1)
        result = execute(builder.build())
        assert np.all(result.value(rows) == 6.0)

    def test_full_reduction_to_scalar_view(self):
        builder = ProgramBuilder()
        vector = builder.new_vector(5)
        total = builder.new_vector(1)
        builder.arange(vector)
        builder.add_reduce(total, vector, axis=0)
        result = execute(builder.build())
        assert result.scalar(total) == 10.0

    def test_multiply_and_maximum_reduce(self):
        builder = ProgramBuilder()
        vector = builder.new_vector(4)
        product = builder.new_vector(1)
        top = builder.new_vector(1)
        builder.arange(vector)
        builder.add(vector, vector, 1)  # 1, 2, 3, 4
        builder.multiply_reduce(product, vector, axis=0)
        builder.maximum_reduce(top, vector, axis=0)
        result = execute(builder.build())
        assert result.scalar(product) == 24.0
        assert result.scalar(top) == 4.0

    def test_range(self):
        builder = ProgramBuilder()
        vector = builder.new_vector(6)
        builder.arange(vector)
        result = execute(builder.build())
        assert list(result.value(vector)) == [0, 1, 2, 3, 4, 5]

    def test_random_is_deterministic_per_seed(self):
        builder = ProgramBuilder()
        first = builder.new_vector(16)
        second = builder.new_vector(16)
        builder.random(first, seed=123)
        builder.random(second, seed=123)
        result = execute(builder.build())
        assert np.array_equal(result.value(first), result.value(second))
        assert np.all((result.value(first) >= 0) & (result.value(first) < 1))


class TestExtensionOps:
    def test_matmul(self):
        builder = ProgramBuilder()
        a = builder.new_matrix(2, 2)
        b = builder.new_vector(2)
        out = builder.new_vector(2)
        builder.matmul(out, a, b)
        program = builder.build()
        memory = MemoryManager()
        memory.set_data(a.base, np.array([[1.0, 2.0], [3.0, 4.0]]))
        memory.set_data(b.base, np.array([1.0, 1.0]))
        result = execute(program, memory)
        assert list(result.value(out)) == [3.0, 7.0]

    def test_matrix_inverse_and_lu_solve_agree(self):
        from repro.linalg.util import random_well_conditioned

        n = 8
        builder = ProgramBuilder()
        a = builder.new_matrix(n, n)
        b = builder.new_vector(n)
        inv = builder.new_matrix(n, n)
        x_inv = builder.new_vector(n)
        x_lu = builder.new_vector(n)
        builder.matrix_inverse(inv, a)
        builder.matmul(x_inv, inv, b)
        builder.lu_solve(x_lu, a, b)
        program = builder.build()
        memory = MemoryManager()
        memory.set_data(a.base, random_well_conditioned(n, seed=3))
        memory.set_data(b.base, np.arange(1.0, n + 1))
        result = execute(program, memory)
        assert np.allclose(result.value(x_inv), result.value(x_lu))

    def test_transpose(self):
        builder = ProgramBuilder()
        a = builder.new_matrix(2, 3)
        at = builder.new_matrix(3, 2)
        builder.transpose(at, a)
        program = builder.build()
        memory = MemoryManager()
        memory.set_data(a.base, np.arange(6.0).reshape(2, 3))
        result = execute(program, memory)
        assert np.array_equal(result.value(at), np.arange(6.0).reshape(2, 3).T)


class TestSystemAndStats:
    def test_free_releases_storage(self):
        builder = ProgramBuilder()
        vector = builder.new_vector(4)
        builder.identity(vector, 1)
        builder.free(vector)
        result = execute(builder.build())
        assert not result.memory.is_allocated(vector.base)

    def test_fused_instruction_counts_one_launch(self):
        builder = ProgramBuilder()
        vector = builder.new_vector(4)
        inner = [
            Instruction(OpCode.BH_IDENTITY, (vector, 1.0)),
            Instruction(OpCode.BH_ADD, (vector, vector, 2.0)),
        ]
        program = Program([Instruction(OpCode.BH_FUSED, (), kernel=inner)])
        result = execute(program)
        assert result.stats.kernel_launches == 1
        assert result.stats.instructions_executed == 3  # fused wrapper + 2 inner
        assert np.all(result.value(vector) == 3.0)

    def test_stats_counters(self):
        builder = ProgramBuilder()
        vector = builder.new_vector(10)
        builder.identity(vector, 0)
        builder.add(vector, vector, 1)
        builder.sync(vector)
        result = execute(builder.build())
        stats = result.stats
        assert stats.kernel_launches == 2
        assert stats.elements_processed == 20
        assert stats.bytes_written == 160
        assert stats.bytes_read == 80
        assert stats.opcode_counts[OpCode.BH_ADD] == 1
        assert stats.wall_time_seconds > 0

    def test_unknown_failure_wrapped_as_execution_error(self):
        # Force a runtime failure via an extension op-code with corrupt
        # operands (1-D views where matrices are expected); the interpreter
        # must surface it as an ExecutionError, not a bare NumPy error.
        left = View.full(BaseArray(6), (2, 3))
        right = View.full(BaseArray(4), (2, 2))
        out = View.full(BaseArray(4), (2, 2))
        bad = Instruction(OpCode.BH_MATMUL, (out, left, right))
        with pytest.raises(ExecutionError):
            execute(Program([bad]))


class TestScalarHelpers:
    def test_result_scalar_requires_single_element(self):
        builder = ProgramBuilder()
        vector = builder.new_vector(4)
        builder.identity(vector, 1)
        result = execute(builder.build())
        with pytest.raises(ValueError):
            result.scalar(vector)
