"""Tests for kernel clustering, kernel compilation and the fusing JIT backend."""

import numpy as np
import pytest

from repro.bytecode.builder import ProgramBuilder
from repro.bytecode.instruction import Instruction
from repro.bytecode.opcodes import OpCode
from repro.bytecode.program import Program
from repro.bytecode.view import View
from repro.runtime.interpreter import NumPyInterpreter
from repro.runtime.jit import FusingJIT
from repro.runtime.kernel import Kernel, partition_into_kernels
from repro.runtime.memory import MemoryManager
from repro.utils.config import config_override


def chain_program(length=6, size=16):
    builder = ProgramBuilder()
    vector = builder.new_vector(size)
    builder.identity(vector, 1)
    for _ in range(length):
        builder.add(vector, vector, 1)
    builder.sync(vector)
    return builder.build(), vector


class TestPartitioning:
    def test_consecutive_elementwise_cluster_together(self):
        program, _ = chain_program(length=5)
        partition = partition_into_kernels(program)
        kernels = [item for item in partition if isinstance(item, Kernel)]
        assert len(kernels) == 1
        assert kernels[0].size == 6  # identity + 5 adds
        # the trailing SYNC stays a bare instruction
        assert partition[-1].opcode is OpCode.BH_SYNC

    def test_non_elementwise_cuts_the_kernel(self):
        builder = ProgramBuilder()
        vector = builder.new_vector(8)
        total = builder.new_vector(1)
        builder.identity(vector, 1)
        builder.add(vector, vector, 1)
        builder.add_reduce(total, vector, axis=0)
        builder.add(vector, vector, 1)
        program = builder.build()
        partition = partition_into_kernels(program)
        kernels = [item for item in partition if isinstance(item, Kernel)]
        assert [k.size for k in kernels] == [2, 1]

    def test_shape_change_cuts_the_kernel(self):
        builder = ProgramBuilder()
        small = builder.new_vector(4)
        large = builder.new_vector(8)
        builder.identity(small, 1)
        builder.identity(large, 1)
        partition = partition_into_kernels(builder.build())
        kernels = [item for item in partition if isinstance(item, Kernel)]
        assert [k.size for k in kernels] == [1, 1]

    def test_max_kernel_size_respected(self):
        program, _ = chain_program(length=9)  # 10 element-wise byte-codes
        partition = partition_into_kernels(program, max_kernel_size=4)
        kernels = [item for item in partition if isinstance(item, Kernel)]
        assert [k.size for k in kernels] == [4, 4, 2]

    def test_kernel_metadata(self):
        program, vector = chain_program(length=2)
        kernel = [item for item in partition_into_kernels(program) if isinstance(item, Kernel)][0]
        assert kernel.shape == (16,)
        assert vector in kernel.output_views()
        assert vector in kernel.input_views()

    def test_bare_call_honours_the_config_knob(self):
        # Regression: the default used to be a hardcoded 32, silently
        # ignoring Config.fusion_max_kernel_size for bare calls.
        program, _ = chain_program(length=9)  # 10 element-wise byte-codes
        with config_override(fusion_max_kernel_size=4):
            partition = partition_into_kernels(program)
        kernels = [item for item in partition if isinstance(item, Kernel)]
        assert [k.size for k in kernels] == [4, 4, 2]
        with config_override(fusion_max_kernel_size=3):
            partition = partition_into_kernels(program)
        kernels = [item for item in partition if isinstance(item, Kernel)]
        assert [k.size for k in kernels] == [3, 3, 3, 1]


class TestCanAcceptIterationSpaces:
    """Regression tests for Kernel.can_accept's input-view validation."""

    def _seed_kernel(self, length=8):
        builder = ProgramBuilder()
        out = builder.new_vector(length)
        source = builder.new_vector(length)
        instruction = builder.add(out, source, 1.0)
        kernel = Kernel()
        kernel.append(builder.build()[0])
        return kernel, builder

    def test_differently_shaped_input_view_is_rejected(self):
        # Candidate's *output* matches the kernel shape but an input view
        # iterates a different space (a reshaped window): it used to fuse.
        kernel, builder = self._seed_kernel(length=8)
        out2 = builder.new_vector(8)
        reshaped = View(builder.new_base(8), 0, (2, 4))
        candidate = Instruction(OpCode.BH_ADD, (out2, reshaped, 1.0))
        assert candidate.out.shape == kernel.shape
        assert not kernel.can_accept(candidate, max_size=32)

    def test_shifted_overlapping_view_chain_is_cut(self):
        # i1 writes a[0:8]; i2 reads the shifted window a[1:9].  Fusing
        # them into one iteration space would read elements the fused loop
        # already overwrote — the kernel must be cut.
        builder = ProgramBuilder()
        base = builder.new_base(9)
        lo = View(base, 0, (8,), (1,))
        hi = View(base, 1, (8,), (1,))
        out = builder.new_vector(8)
        builder.emit(OpCode.BH_ADD, lo, lo, 1.0)
        builder.emit(OpCode.BH_ADD, out, hi, 0.5)
        program = builder.build()
        partition = partition_into_kernels(program)
        kernels = [item for item in partition if isinstance(item, Kernel)]
        assert [k.size for k in kernels] == [1, 1]
        # The same chain through identical views still fuses.
        builder2 = ProgramBuilder()
        base2 = builder2.new_base(8)
        full = View(base2, 0, (8,), (1,))
        out2 = builder2.new_vector(8)
        builder2.emit(OpCode.BH_ADD, full, full, 1.0)
        builder2.emit(OpCode.BH_ADD, out2, full, 0.5)
        kernels2 = [
            item
            for item in partition_into_kernels(builder2.build())
            if isinstance(item, Kernel)
        ]
        assert [k.size for k in kernels2] == [2]

    def test_overlapping_write_over_earlier_read_is_cut(self):
        # i1 reads a[1:9]; i2 writes the shifted window a[0:8]: fusing
        # would let the loop overwrite elements i1 still needs.
        builder = ProgramBuilder()
        base = builder.new_base(9)
        lo = View(base, 0, (8,), (1,))
        hi = View(base, 1, (8,), (1,))
        out = builder.new_vector(8)
        builder.emit(OpCode.BH_ADD, out, hi, 1.0)
        builder.emit(OpCode.BH_IDENTITY, lo, 0.0)
        kernels = [
            item
            for item in partition_into_kernels(builder.build())
            if isinstance(item, Kernel)
        ]
        assert [k.size for k in kernels] == [1, 1]

    def test_cut_chain_still_executes_bitwise_like_the_interpreter(self):
        builder = ProgramBuilder()
        base = builder.new_base(9)
        lo = View(base, 0, (8,), (1,))
        hi = View(base, 1, (8,), (1,))
        out = builder.new_vector(8)
        builder.emit(OpCode.BH_IDENTITY, View.full(base), 2.0)
        builder.emit(OpCode.BH_ADD, lo, hi, 1.0)
        builder.emit(OpCode.BH_MULTIPLY, out, hi, 0.5)
        builder.sync(out)
        program = builder.build()
        reference = NumPyInterpreter().execute(program)
        jit = FusingJIT().execute(program)
        assert np.array_equal(reference.value(out), jit.value(out))
        assert np.array_equal(
            reference.value(View.full(base)), jit.value(View.full(base))
        )


class TestKernelCompilation:
    def test_compiled_kernel_computes_the_chain(self):
        program, vector = chain_program(length=4)
        kernel = [item for item in partition_into_kernels(program) if isinstance(item, Kernel)][0]
        memory = MemoryManager()
        kernel.compile()(memory)
        assert np.all(memory.read_view(vector) == 5.0)

    def test_as_instruction_wraps_payload(self):
        program, _ = chain_program(length=3)
        kernel = [item for item in partition_into_kernels(program) if isinstance(item, Kernel)][0]
        fused = kernel.as_instruction(tag="test")
        assert fused.opcode is OpCode.BH_FUSED
        assert len(fused.kernel) == kernel.size


class TestFusingJIT:
    def test_results_match_interpreter(self):
        program, vector = chain_program(length=7)
        reference = NumPyInterpreter().execute(program).value(vector)
        jit_result = FusingJIT().execute(program).value(vector)
        assert np.array_equal(reference, jit_result)

    def test_fewer_kernel_launches_than_interpreter(self):
        program, _ = chain_program(length=7)
        interpreter_launches = NumPyInterpreter().execute(program).stats.kernel_launches
        jit_launches = FusingJIT().execute(program).stats.kernel_launches
        assert interpreter_launches == 8
        assert jit_launches == 1

    def test_kernel_cache_hits_on_repeated_execution(self):
        program, _ = chain_program(length=5)
        jit = FusingJIT()
        jit.execute(program)
        assert jit.cache_misses >= 1
        before_hits = jit.cache_hits
        jit.execute(program)
        assert jit.cache_hits > before_hits

    def test_mixed_program_with_reduction(self):
        builder = ProgramBuilder()
        vector = builder.new_vector(6)
        total = builder.new_vector(1)
        builder.arange(vector)
        builder.add(vector, vector, 1)
        builder.multiply(vector, vector, 2)
        builder.add_reduce(total, vector, axis=0)
        program = builder.build()
        result = FusingJIT().execute(program)
        assert result.scalar(total) == float(sum((i + 1) * 2 for i in range(6)))

    def test_schedules_are_cached_across_repeated_executions(self):
        # Warm flushes hand the JIT a structurally identical program every
        # round; the dependency-graph analysis must not be re-paid.
        jit = FusingJIT()
        jit.execute(chain_program(length=5)[0])
        assert len(jit._schedule_cache) == 1
        jit.execute(chain_program(length=5)[0])  # fresh bases, same structure
        assert len(jit._schedule_cache) == 1
        jit.execute(chain_program(length=7)[0])
        assert len(jit._schedule_cache) == 2

    def test_respects_preexisting_fused_instructions(self):
        program, vector = chain_program(length=3)
        kernel = [item for item in partition_into_kernels(program) if isinstance(item, Kernel)][0]
        wrapped = Program([kernel.as_instruction(), program[-1]])
        result = FusingJIT().execute(wrapped)
        assert np.all(result.value(vector) == 4.0)
        assert result.stats.kernel_launches == 1
