"""Tests for the memory manager."""

import numpy as np
import pytest

from repro.bytecode.base import BaseArray
from repro.bytecode.dtypes import int64
from repro.bytecode.view import View
from repro.runtime.memory import MemoryManager
from repro.utils.errors import AllocationError


class TestAllocation:
    def test_allocation_is_zero_initialised(self):
        memory = MemoryManager()
        base = BaseArray(5)
        assert np.all(memory.allocate(base) == 0.0)

    def test_allocation_is_idempotent(self):
        memory = MemoryManager()
        base = BaseArray(5)
        first = memory.allocate(base)
        first[:] = 7.0
        second = memory.allocate(base)
        assert second is first

    def test_accounting(self):
        memory = MemoryManager()
        base = BaseArray(1000)  # 8000 bytes
        memory.allocate(base)
        assert memory.bytes_allocated == 8000
        assert memory.peak_bytes == 8000
        memory.free(base)
        assert memory.bytes_allocated == 0
        assert memory.peak_bytes == 8000
        assert memory.allocation_count == 1
        assert memory.free_count == 1

    def test_free_unallocated_is_noop(self):
        memory = MemoryManager()
        memory.free(BaseArray(4))
        assert memory.free_count == 0

    def test_free_all(self):
        memory = MemoryManager()
        bases = [BaseArray(4) for _ in range(3)]
        for base in bases:
            memory.allocate(base)
        memory.free_all()
        assert memory.bytes_allocated == 0
        assert list(memory.live_bases()) == []

    def test_set_data_copies(self):
        memory = MemoryManager()
        base = BaseArray(4)
        source = np.array([1.0, 2.0, 3.0, 4.0])
        memory.set_data(base, source)
        source[0] = 99.0
        assert memory.allocate(base)[0] == 1.0

    def test_set_data_wrong_size(self):
        memory = MemoryManager()
        with pytest.raises(AllocationError):
            memory.set_data(BaseArray(4), np.zeros(5))

    def test_set_data_casts_dtype(self):
        memory = MemoryManager()
        base = BaseArray(3, int64)
        memory.set_data(base, np.array([1.9, 2.1, 3.0]))
        assert memory.allocate(base).dtype == np.int64


class TestViews:
    def test_view_array_shares_storage(self):
        memory = MemoryManager()
        base = BaseArray(10)
        window = memory.view_array(View(base, 2, (3,), (1,)))
        window[:] = 5.0
        flat = memory.allocate(base)
        assert list(flat[2:5]) == [5.0, 5.0, 5.0]
        assert flat[0] == 0.0

    def test_strided_view(self):
        memory = MemoryManager()
        base = BaseArray(10)
        memory.set_data(base, np.arange(10.0))
        evens = memory.view_array(View(base, 0, (5,), (2,)))
        assert list(evens) == [0.0, 2.0, 4.0, 6.0, 8.0]

    def test_matrix_view(self):
        memory = MemoryManager()
        base = BaseArray(6)
        memory.set_data(base, np.arange(6.0))
        matrix = memory.view_array(View.full(base, (2, 3)))
        assert matrix.shape == (2, 3)
        assert matrix[1, 2] == 5.0

    def test_read_view_is_a_copy(self):
        memory = MemoryManager()
        base = BaseArray(4)
        copy = memory.read_view(View.full(base))
        copy[:] = 9.0
        assert np.all(memory.allocate(base) == 0.0)

    def test_write_view_broadcasts(self):
        memory = MemoryManager()
        base = BaseArray(4)
        memory.write_view(View.full(base), 3.5)
        assert np.all(memory.allocate(base) == 3.5)

    def test_clone_is_independent(self):
        memory = MemoryManager()
        base = BaseArray(4)
        memory.set_data(base, np.ones(4))
        clone = memory.clone()
        memory.write_view(View.full(base), 2.0)
        assert np.all(clone.read_view(View.full(base)) == 1.0)
