"""Tests for the memory manager."""

import numpy as np
import pytest

from repro.bytecode.base import BaseArray
from repro.bytecode.dtypes import int64
from repro.bytecode.view import View
from repro.runtime.memory import MemoryManager
from repro.utils.errors import AllocationError


class TestAllocation:
    def test_allocation_is_zero_initialised(self):
        memory = MemoryManager()
        base = BaseArray(5)
        assert np.all(memory.allocate(base) == 0.0)

    def test_allocation_is_idempotent(self):
        memory = MemoryManager()
        base = BaseArray(5)
        first = memory.allocate(base)
        first[:] = 7.0
        second = memory.allocate(base)
        assert second is first

    def test_accounting(self):
        memory = MemoryManager()
        base = BaseArray(1000)  # 8000 bytes
        memory.allocate(base)
        assert memory.bytes_allocated == 8000
        assert memory.peak_bytes == 8000
        memory.free(base)
        assert memory.bytes_allocated == 0
        assert memory.peak_bytes == 8000
        assert memory.allocation_count == 1
        assert memory.free_count == 1

    def test_free_unallocated_is_noop(self):
        memory = MemoryManager()
        memory.free(BaseArray(4))
        assert memory.free_count == 0

    def test_free_all(self):
        memory = MemoryManager()
        bases = [BaseArray(4) for _ in range(3)]
        for base in bases:
            memory.allocate(base)
        memory.free_all()
        assert memory.bytes_allocated == 0
        assert list(memory.live_bases()) == []

    def test_set_data_copies(self):
        memory = MemoryManager()
        base = BaseArray(4)
        source = np.array([1.0, 2.0, 3.0, 4.0])
        memory.set_data(base, source)
        source[0] = 99.0
        assert memory.allocate(base)[0] == 1.0

    def test_set_data_wrong_size(self):
        memory = MemoryManager()
        with pytest.raises(AllocationError):
            memory.set_data(BaseArray(4), np.zeros(5))

    def test_set_data_casts_dtype(self):
        memory = MemoryManager()
        base = BaseArray(3, int64)
        memory.set_data(base, np.array([1.9, 2.1, 3.0]))
        assert memory.allocate(base).dtype == np.int64


class TestViews:
    def test_view_array_shares_storage(self):
        memory = MemoryManager()
        base = BaseArray(10)
        window = memory.view_array(View(base, 2, (3,), (1,)))
        window[:] = 5.0
        flat = memory.allocate(base)
        assert list(flat[2:5]) == [5.0, 5.0, 5.0]
        assert flat[0] == 0.0

    def test_strided_view(self):
        memory = MemoryManager()
        base = BaseArray(10)
        memory.set_data(base, np.arange(10.0))
        evens = memory.view_array(View(base, 0, (5,), (2,)))
        assert list(evens) == [0.0, 2.0, 4.0, 6.0, 8.0]

    def test_matrix_view(self):
        memory = MemoryManager()
        base = BaseArray(6)
        memory.set_data(base, np.arange(6.0))
        matrix = memory.view_array(View.full(base, (2, 3)))
        assert matrix.shape == (2, 3)
        assert matrix[1, 2] == 5.0

    def test_read_view_is_a_copy(self):
        memory = MemoryManager()
        base = BaseArray(4)
        copy = memory.read_view(View.full(base))
        copy[:] = 9.0
        assert np.all(memory.allocate(base) == 0.0)

    def test_write_view_broadcasts(self):
        memory = MemoryManager()
        base = BaseArray(4)
        memory.write_view(View.full(base), 3.5)
        assert np.all(memory.allocate(base) == 3.5)

    def test_clone_is_independent(self):
        memory = MemoryManager()
        base = BaseArray(4)
        memory.set_data(base, np.ones(4))
        clone = memory.clone()
        memory.write_view(View.full(base), 2.0)
        assert np.all(clone.read_view(View.full(base)) == 1.0)


class TestCloneAccounting:
    def test_clone_preserves_true_peak(self):
        """Regression: clone() used to reset the peak to the *current* level.

        A verifier run that cloned after a large temporary was freed
        under-reported the true high-water mark.
        """
        memory = MemoryManager()
        big = BaseArray(1000)  # 8000 bytes
        small = BaseArray(10)
        memory.allocate(big)
        memory.allocate(small)
        memory.free(big)
        assert memory.peak_bytes == 8080
        clone = memory.clone()
        assert clone.peak_bytes == 8080
        assert clone.bytes_allocated == 80

    def test_clone_carries_allocation_counters(self):
        memory = MemoryManager()
        first, second = BaseArray(4), BaseArray(4)
        memory.allocate(first)
        memory.allocate(second)
        memory.free(first)
        clone = memory.clone()
        assert clone.allocation_count == 2
        assert clone.free_count == 1


class TestViewRealizationEdgeCases:
    def test_negative_stride_view_reads_reversed(self):
        memory = MemoryManager()
        base = BaseArray(10)
        memory.set_data(base, np.arange(10.0))
        reversed_view = View(base, 9, (10,), (-1,))
        assert list(memory.view_array(reversed_view)) == list(reversed(range(10)))

    def test_negative_stride_view_writes_through(self):
        memory = MemoryManager()
        base = BaseArray(6)
        reversed_view = View(base, 5, (6,), (-1,))
        memory.write_view(reversed_view, np.arange(6.0))
        assert list(memory.allocate(base)) == [5.0, 4.0, 3.0, 2.0, 1.0, 0.0]

    def test_negative_stride_view_validates_lower_bound(self):
        base = BaseArray(10)
        with pytest.raises(ValueError):
            View(base, 3, (10,), (-1,))  # would index element -6

    def test_zero_stride_view_broadcasts_one_element(self):
        memory = MemoryManager()
        base = BaseArray(4)
        memory.set_data(base, np.array([3.0, 0.0, 0.0, 0.0]))
        broadcast = View(base, 0, (5,), (0,))
        window = memory.view_array(broadcast)
        assert window.shape == (5,)
        assert np.all(window == 3.0)

    def test_zero_stride_write_collapses_to_one_element(self):
        memory = MemoryManager()
        base = BaseArray(4)
        broadcast = View(base, 1, (3,), (0,))
        memory.write_view(broadcast, 9.0)
        assert list(memory.allocate(base)) == [0.0, 9.0, 0.0, 0.0]

    def test_overlapping_read_and_write_windows(self):
        """A shifted self-copy through overlapping windows (stencil idiom)."""
        memory = MemoryManager()
        base = BaseArray(6)
        memory.set_data(base, np.arange(6.0))
        source = View(base, 0, (5,), (1,))
        target = View(base, 1, (5,), (1,))
        # Read out-of-place first (read_view copies), then write: the
        # runtime's reduction/extension paths rely on this being safe.
        data = memory.read_view(source)
        memory.write_view(target, data)
        assert list(memory.allocate(base)) == [0.0, 0.0, 1.0, 2.0, 3.0, 4.0]

    def test_write_view_broadcasts_row_into_matrix(self):
        memory = MemoryManager()
        base = BaseArray(6)
        matrix = View.full(base, (2, 3))
        memory.write_view(matrix, np.array([1.0, 2.0, 3.0]))
        assert memory.view_array(matrix).tolist() == [[1.0, 2.0, 3.0], [1.0, 2.0, 3.0]]

    def test_write_view_rejects_non_broadcastable(self):
        memory = MemoryManager()
        base = BaseArray(6)
        with pytest.raises(ValueError):
            memory.write_view(View.full(base, (2, 3)), np.zeros((3, 2)))

    def test_set_data_size_mismatch_both_directions(self):
        memory = MemoryManager()
        with pytest.raises(AllocationError):
            memory.set_data(BaseArray(4), np.zeros(5))
        with pytest.raises(AllocationError):
            memory.set_data(BaseArray(4), np.zeros(3))

    def test_set_data_accepts_any_shape_with_matching_size(self):
        memory = MemoryManager()
        base = BaseArray(6)
        memory.set_data(base, np.arange(6.0).reshape(2, 3))
        assert list(memory.allocate(base)) == [0.0, 1.0, 2.0, 3.0, 4.0, 5.0]
