"""Tests for plan-time memory planning and the recycling buffer pool."""

import numpy as np
import pytest

from repro.bytecode.base import BaseArray
from repro.bytecode.builder import ProgramBuilder
from repro.bytecode.view import View
from repro.core.analysis import live_intervals
from repro.runtime.engine import ExecutionEngine
from repro.runtime.memory import BufferPool, MemoryManager, size_class
from repro.runtime.memplan import (
    MemoryPlan,
    attach_memory_plan,
    bind_memory_plan,
    memory_plan_signature,
)
from repro.runtime.plan import program_base_order
from repro.utils.config import config_override


def _chain_program(length=16, temporaries=3):
    """out = (((src + 1) + 1) ...) through freed intermediate temporaries."""
    builder = ProgramBuilder()
    src = builder.new_vector(length)
    out = builder.new_vector(length)
    current = src
    temps = []
    for _ in range(temporaries):
        temp = builder.new_vector(length)
        builder.add(temp, current, 1.0)
        temps.append(temp)
        current = temp
    builder.identity(out, current)
    for temp in temps:
        builder.free(temp)
    builder.sync(out)
    return builder.build(), src, out, temps


class TestLiveIntervals:
    def test_temporary_classification(self):
        program, src, out, temps = _chain_program()
        intervals = {i.base.name: i for i in live_intervals(program)}
        # src is read before ever being written: an input, not a temporary.
        assert not intervals[src.base.name].defined_in_program
        assert not intervals[src.base.name].is_temporary
        # out is synced: observable, never aliasable.
        assert intervals[out.base.name].synced
        assert not intervals[out.base.name].is_temporary
        for temp in temps:
            interval = intervals[temp.base.name]
            assert interval.is_temporary
            assert interval.fully_defined_before_read

    def test_trailing_free_does_not_extend_last_use(self):
        program, _, _, temps = _chain_program()
        intervals = {i.base.name: i for i in live_intervals(program)}
        first = intervals[temps[0].base.name]
        # Frees trail at the end of the batch; last_use stays at the read.
        assert first.last_use < first.end

    def test_partial_write_needs_zero_fill(self):
        builder = ProgramBuilder()
        base = builder.new_base(8)
        half = View(base, 0, (4,), (1,))
        full = View.full(base)
        sink = builder.new_vector(8)
        builder.identity(half, 1.0)         # partial write ...
        builder.identity(sink, full)        # ... then a full read
        builder.free(full)
        builder.sync(sink)
        program = builder.build()
        intervals = {i.base.name: i for i in live_intervals(program)}
        interval = intervals[base.name]
        assert interval.defined_in_program
        assert not interval.fully_defined_before_read
        assert interval.is_temporary  # aliasable, but must be zero-filled


class TestMemoryPlan:
    def test_disjoint_temporaries_share_a_slot(self):
        program, _, _, temps = _chain_program(temporaries=4)
        plan = MemoryPlan.plan(program)
        assert plan.aliased_bases >= 1
        assert plan.num_slots < len(temps)
        assert plan.planned_peak_bytes < plan.unplanned_peak_bytes

    def test_synced_bases_never_aliased(self):
        program, src, out, temps = _chain_program()
        plan = MemoryPlan.plan(program)
        order = program_base_order(program)
        positions = {base.name: position for position, base in enumerate(order)}
        for name in (src.base.name, out.base.name):
            directive = plan.directives.get(positions[name])
            assert directive is None or directive.slot is None

    def test_zero_fill_waived_only_when_fully_defined(self):
        program, _, _, temps = _chain_program()
        plan = MemoryPlan.plan(program)
        order = program_base_order(program)
        positions = {base.name: position for position, base in enumerate(order)}
        for temp in temps:
            directive = plan.directives[positions[temp.base.name]]
            assert directive.zero_fill is False

    def test_always_policy_disables_waivers(self):
        program, _, _, _ = _chain_program()
        with config_override(memory_zero_policy="always"):
            plan = MemoryPlan.plan(program)
        assert plan.zero_fills_waived == 0
        assert all(d.zero_fill for d in plan.directives.values())

    def test_bind_maps_positionally_onto_fresh_bases(self):
        program, _, _, _ = _chain_program()
        plan = MemoryPlan.plan(program)
        bound = plan.bind(program)
        order = program_base_order(program)
        for position, directive in plan.directives.items():
            assert bound[id(order[position])] == directive

    def test_execution_with_aliasing_matches_unplanned(self):
        program, src, out, _ = _chain_program(length=32, temporaries=5)
        plan = MemoryPlan.plan(program)
        assert plan.aliased_bases >= 1

        def run(directives):
            memory = MemoryManager()
            memory.set_data(src.base, np.arange(32.0))
            memory.apply_plan(directives)
            from repro.runtime.interpreter import NumPyInterpreter

            return NumPyInterpreter().execute(program, memory).value(out)

        unplanned = run(None)
        planned = run(plan.bind(program))
        assert np.array_equal(planned, unplanned)

    def test_slot_grows_to_largest_occupant(self):
        builder = ProgramBuilder()
        small = builder.new_vector(8)
        big = builder.new_vector(64)
        sink = builder.new_vector(64)
        sink_head = View(sink.base, 0, (8,), (1,))
        builder.identity(small, 1.0)
        builder.identity(sink_head, small)
        builder.free(small)
        builder.identity(big, 2.0)
        builder.add(sink, sink, big)
        builder.free(big)
        builder.sync(sink)
        program = builder.build(validate=False)
        plan = MemoryPlan.plan(program)
        slotted = [d for d in plan.directives.values() if d.slot is not None]
        if len({d.slot for d in slotted}) == 1 and len(slotted) == 2:
            # Both temporaries share the grown slot: capacity fits the big one.
            assert all(d.slot_nbytes == 64 * 8 for d in slotted)


class TestBufferPool:
    def test_size_classes_are_powers_of_two(self):
        assert size_class(1) == 64
        assert size_class(64) == 64
        assert size_class(65) == 128
        assert size_class(8000) == 8192

    def test_acquire_release_recycles(self):
        pool = BufferPool(max_bytes=1 << 20)
        first = pool.acquire(100)
        pool.release(first)
        second = pool.acquire(100)
        assert second is first
        assert pool.hits == 1
        assert pool.misses == 1
        assert pool.bytes_reused == 100

    def test_byte_cap_discards(self):
        pool = BufferPool(max_bytes=128)
        buffer = pool.acquire(1024)  # class 1024 > cap
        pool.release(buffer)
        assert pool.bytes_held == 0
        assert pool.discards == 1

    def test_manager_recycles_freed_buffers(self):
        memory = MemoryManager(pool=BufferPool(max_bytes=1 << 20))
        first = BaseArray(100)
        memory.allocate(first)
        memory.free(first)
        second = BaseArray(100)
        storage = memory.allocate(second)
        assert memory.host_allocations == 1
        assert memory.pool.hits == 1
        # Recycled storage is still zero-initialised without a waiver.
        assert np.all(storage == 0.0)

    def test_recycled_buffer_zeroed_without_directive(self):
        memory = MemoryManager(pool=BufferPool(max_bytes=1 << 20))
        first = BaseArray(10)
        memory.allocate(first)[:] = 7.0
        memory.free(first)
        second = BaseArray(10)
        assert np.all(memory.allocate(second) == 0.0)

    def test_pool_disabled_by_config(self):
        with config_override(memory_pool_max_bytes=0):
            memory = MemoryManager()
        # A zero byte cap means nothing is ever parked: every free falls
        # through to the host and every allocation is fresh.
        assert memory.pool.max_bytes == 0
        base = BaseArray(10)
        memory.allocate(base)
        memory.free(base)
        memory.allocate(BaseArray(10))
        assert memory.host_allocations == 2
        assert memory.pool.hits == 0
        assert memory.pool.bytes_held == 0


class TestEngineIntegration:
    def _program(self):
        return _chain_program(length=24, temporaries=4)

    def test_planning_toggles_rekey_plan_cache(self):
        program, _, _, _ = self._program()
        engine = ExecutionEngine(backend="interpreter", optimize=True)
        with config_override(memory_plan_enabled=True):
            engine.execute(program)
        with config_override(memory_plan_enabled=False):
            engine.execute(program)
        # Both executions were misses: the config signature re-keyed.
        assert engine.plan_cache.misses == 2
        assert engine.plan_cache.hits == 0

    def test_plan_carries_memory_plan_and_replays_it(self):
        program, _, out, _ = self._program()
        engine = ExecutionEngine(backend="interpreter", optimize=True)
        first = engine.execute(program)
        plan = engine.last_plan
        assert plan.memory_plan is not None
        memory_plan = plan.memory_plan
        second = engine.execute(program)
        assert engine.last_plan.memory_plan is memory_plan  # replayed, not rebuilt
        assert np.array_equal(first.value(out), second.value(out))
        assert second.stats.plan_cache_hits == 1
        assert second.stats.planned_peak_bytes == memory_plan.planned_peak_bytes
        assert second.stats.actual_peak_bytes > 0

    def test_disabled_planning_attaches_nothing(self):
        program, _, _, _ = self._program()
        with config_override(memory_plan_enabled=False):
            engine = ExecutionEngine(backend="interpreter", optimize=True)
            engine.execute(program)
            assert engine.last_plan.memory_plan is None

    def test_all_backends_agree_with_planning(self):
        program, _, out, _ = self._program()
        results = {}
        for backend in ("interpreter", "jit", "parallel", "cluster"):
            engine = ExecutionEngine(backend=backend, optimize=True)
            results[backend] = engine.execute(program).value(out)
        reference = results["interpreter"]
        for backend, value in results.items():
            assert np.array_equal(value, reference), backend

    def test_stale_directives_cleared_on_unplanned_flush(self):
        program, src, out, _ = self._program()
        engine = ExecutionEngine(backend="interpreter", optimize=True)
        memory = MemoryManager()
        engine.execute(program, memory)
        assert memory._directives  # the planned flush installed directives
        engine.optimize_enabled = False
        engine.execute(program, memory)
        # The plan-less flush must have cleared the previous directives.
        assert memory._directives == {}

    def test_attach_is_idempotent_per_signature(self):
        program, _, _, _ = self._program()
        engine = ExecutionEngine(backend="interpreter", optimize=True)
        engine.execute(program)
        plan = engine.last_plan
        memory_plan = plan.memory_plan
        attach_memory_plan(plan)
        assert plan.memory_plan is memory_plan
        assert plan.memory_signature == memory_plan_signature()


class TestManagerPlanDirectives:
    def test_aliased_bases_share_storage_sequentially(self):
        program, _, _, temps = _chain_program(length=16, temporaries=4)
        plan = MemoryPlan.plan(program)
        memory = MemoryManager()
        memory.apply_plan(plan.bind(program))
        shared = [
            temp.base for temp in temps
            if memory._directives.get(id(temp.base)) is not None
            and memory._directives[id(temp.base)].slot is not None
        ]
        assert len(shared) >= 2
        by_slot = {}
        for base in shared:
            by_slot.setdefault(memory._directives[id(base)].slot, []).append(base)
        slot, occupants = max(by_slot.items(), key=lambda item: len(item[1]))
        assert len(occupants) >= 2
        first_storage = memory.allocate(occupants[0])
        first_storage[:] = 3.25
        memory.free(occupants[0])
        second_storage = memory.allocate(occupants[1], zero=False)
        # Same raw buffer, handed over without a zero fill.
        assert second_storage[0] == 3.25

    def test_new_plan_never_adopts_stale_occupied_slot(self):
        """Regression: slot ids are plan-scoped, not global.

        If an execution dies between a temporary claiming a slot and its
        trailing BH_FREE, the occupied slot buffer survives the next
        ``apply_plan``.  The next plan's identically-numbered slot must get
        its own (correctly sized) buffer, never adopt the stale one.
        """
        from repro.runtime.memory import BufferDirective

        memory = MemoryManager(pool=BufferPool(max_bytes=1 << 20))
        survivor = BaseArray(8)  # 64 bytes
        memory.apply_plan({id(survivor): BufferDirective(slot=0, slot_nbytes=64, zero_fill=True)})
        stale_storage = memory.allocate(survivor)
        stale_storage[:] = 1.5
        # No free: the occupant survives into the next plan.
        bigger = BaseArray(100)  # 800 bytes, same slot id, new plan
        memory.apply_plan({id(bigger): BufferDirective(slot=0, slot_nbytes=800, zero_fill=True)})
        storage = memory.allocate(bigger)
        assert storage.size == 100  # full-capacity fresh buffer, not a stale carve
        storage[:] = 2.0
        # The survivor's bytes are untouched: the buffers are distinct.
        assert np.all(memory.allocate(survivor) == 1.5)

    def test_apply_plan_releases_previous_slots_to_pool(self):
        program, _, _, _ = _chain_program(length=16, temporaries=4)
        plan = MemoryPlan.plan(program)
        memory = MemoryManager(pool=BufferPool(max_bytes=1 << 20))
        directives = plan.bind(program)
        memory.apply_plan(directives)
        slotted = {key for key, d in directives.items() if d.slot is not None}
        occupant = next(
            base for base in program_base_order(program) if id(base) in slotted
        )
        memory.allocate(occupant)
        memory.free(occupant)
        held_before = memory.pool.bytes_held
        memory.apply_plan(None)
        # The idle slot buffer was recycled through the pool, not leaked.
        assert memory.pool.bytes_held > held_before
        assert memory.bytes_allocated == 0
