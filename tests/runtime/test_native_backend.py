"""Unit tests for the native codegen backend.

The differential harness establishes *parity*; these tests pin the
backend's mechanics: fallback behaviour with codegen off or no compiler,
compile/cache counter windows, plan-time pre-compilation, the single-pass
whole-step launch, and instruction-local slot elision.
"""

from __future__ import annotations

import numpy as np
import pytest

from repro.bytecode.builder import ProgramBuilder
from repro.codegen import clear_memory_cache, find_c_compiler
from repro.runtime.backend import get_backend
from repro.runtime.engine import ExecutionEngine
from repro.runtime.native import NativeBackend
from repro.runtime.tiling import TiledMapStep
from repro.utils.config import config_override

requires_compiler = pytest.mark.skipif(
    find_c_compiler() is None, reason="no C compiler on this host"
)

#: Small vectors but guaranteed multi-tile decomposition.
TINY_TILES = dict(parallel_tile_elements=16, parallel_serial_threshold=4)
LENGTH = 64


@pytest.fixture(autouse=True)
def fresh_memory_cache():
    clear_memory_cache()
    yield
    clear_memory_cache()


@pytest.fixture
def cache_dir(tmp_path):
    return str(tmp_path / "codegen-cache")


def build_chain(length=LENGTH, ops=6):
    builder = ProgramBuilder()
    a = builder.new_vector(length)
    b = builder.new_vector(length)
    builder.identity(a, 0.5)
    builder.identity(b, 1.5)
    for i in range(ops):
        if i % 2 == 0:
            builder.multiply(a, a, b)
        else:
            builder.add(b, b, a)
    builder.sync(a)
    builder.sync(b)
    return builder.build(), a, b


def _oracle(program, views):
    result = ExecutionEngine(backend="interpreter", optimize=False).execute(program)
    return [result.value(view) for view in views]


def test_registered_in_backend_registry():
    backend = get_backend("native")
    assert isinstance(backend, NativeBackend)
    assert backend.name == "native"


class TestFallbacks:
    def test_codegen_disabled_runs_interpreted_templates(self, cache_dir):
        program, a, b = build_chain()
        expected = _oracle(program, (a, b))
        with config_override(
            **TINY_TILES, codegen_enabled=False, codegen_cache_dir=cache_dir
        ):
            engine = ExecutionEngine(backend="native", optimize=True)
            result = engine.execute(program)
        assert np.array_equal(result.value(a), expected[0])
        assert np.array_equal(result.value(b), expected[1])
        assert result.stats.native_kernel_launches == 0
        assert result.stats.native_compiles == 0
        # With codegen off the backend is the parallel backend: it still
        # tiles, it just never resolves a compiled launchable.
        assert result.stats.tiles_executed > 0

    def test_no_compiler_degrades_to_fallbacks(self, cache_dir, monkeypatch):
        # A host without cc: lowering succeeds but compilation raises
        # CompilerUnavailable, which the backend caches as "no native form".
        monkeypatch.setattr("repro.codegen.cache.find_c_compiler", lambda: None)
        program, a, b = build_chain()
        expected = _oracle(program, (a, b))
        with config_override(**TINY_TILES, codegen_cache_dir=cache_dir):
            engine = ExecutionEngine(backend="native", optimize=True)
            first = engine.execute(program)
            second = engine.execute(program)
        for result in (first, second):
            assert np.array_equal(result.value(a), expected[0])
            assert np.array_equal(result.value(b), expected[1])
            assert result.stats.native_kernel_launches == 0
            assert result.stats.native_compiles == 0
        assert first.stats.native_fallbacks > 0
        # The failure is cached: the warm flush re-diagnoses nothing.
        cache = engine.backend.cache_stats()
        assert cache["native_cache_hits"] > 0

    def test_reductions_disabled_fall_back_to_tiled_paths(self, cache_dir):
        # With compiled reductions off, a tiled reduction runs on the
        # interpreted parallel paths (counted as a fallback); a serial
        # generator step runs the interpreter.  Everything still matches
        # the oracle.
        builder = ProgramBuilder()
        matrix = builder.new_matrix(32, 16)
        out = builder.new_vector(32)
        builder.random(matrix, seed=7)
        builder.add_reduce(out, matrix, axis=1)
        builder.sync(out)
        program = builder.build()
        expected = _oracle(program, (out,))
        with config_override(
            **TINY_TILES,
            codegen_cache_dir=cache_dir,
            codegen_reductions_enabled=False,
        ):
            result = ExecutionEngine(backend="native", optimize=True).execute(program)
        assert np.allclose(result.value(out), expected[0])
        assert result.stats.native_compiles == 0
        assert result.stats.native_reductions_compiled == 0
        assert result.stats.native_reduction_fallbacks >= 1


@requires_compiler
class TestCompileCounters:
    def test_cold_then_warm_flush_counters(self, cache_dir):
        program, a, b = build_chain()
        with config_override(**TINY_TILES, codegen_cache_dir=cache_dir):
            engine = ExecutionEngine(backend="native", optimize=True)
            cold = engine.execute(program)
            warm = engine.execute(program)
        assert cold.stats.native_compiles >= 1
        assert cold.stats.native_disk_hits == 0
        assert cold.stats.native_kernel_launches > 0
        assert cold.stats.native_fallbacks == 0
        # Warm replay: plan hit, launch cache hit, zero compiler work.
        assert warm.stats.plan_cache_hits == 1
        assert warm.stats.native_compiles == 0
        assert warm.stats.native_disk_hits == 0
        assert warm.stats.native_memory_hits == 0
        assert warm.stats.native_kernel_launches > 0

    def test_fresh_backend_restores_from_disk(self, cache_dir):
        program, a, b = build_chain()
        with config_override(**TINY_TILES, codegen_cache_dir=cache_dir):
            first = ExecutionEngine(backend="native", optimize=True)
            cold = first.execute(program)
            clear_memory_cache()
            second = ExecutionEngine(backend="native", optimize=True)
            restored = second.execute(program)
        assert restored.stats.native_compiles == 0
        assert restored.stats.native_disk_hits == cold.stats.native_compiles
        assert np.array_equal(restored.value(a), cold.value(a))

    def test_fresh_backend_same_process_hits_artifact_memo(self, cache_dir):
        program, a, b = build_chain()
        with config_override(**TINY_TILES, codegen_cache_dir=cache_dir):
            ExecutionEngine(backend="native", optimize=True).execute(program)
            result = ExecutionEngine(backend="native", optimize=True).execute(program)
        assert result.stats.native_compiles == 0
        assert result.stats.native_memory_hits >= 1

    def test_disk_cache_disabled_compiles_in_memory(self, cache_dir, tmp_path):
        import os

        program, a, b = build_chain()
        with config_override(
            **TINY_TILES,
            codegen_cache_dir=cache_dir,
            codegen_disk_cache_enabled=False,
        ):
            result = ExecutionEngine(backend="native", optimize=True).execute(program)
        assert result.stats.native_compiles >= 1
        assert result.stats.native_kernel_launches > 0
        assert not os.path.exists(cache_dir) or not os.listdir(cache_dir)

    def test_direct_execute_without_engine_windows_stats(self, cache_dir):
        # Backend.execute without the engine's prepare_plan stage must
        # still open and close its own counter window.
        program, a, b = build_chain()
        with config_override(**TINY_TILES, codegen_cache_dir=cache_dir):
            backend = get_backend("native")
            result = backend.execute(program)
        assert result.stats.native_compiles >= 1
        assert result.stats.native_kernel_launches > 0

    def test_cache_stats_reports_all_counters(self, cache_dir):
        program, a, b = build_chain()
        with config_override(**TINY_TILES, codegen_cache_dir=cache_dir):
            engine = ExecutionEngine(backend="native", optimize=True)
            engine.execute(program)
        cache = engine.backend.cache_stats()
        for key in (
            "native_compiles",
            "native_disk_hits",
            "native_memory_hits",
            "native_kernel_launches",
            "native_fallbacks",
            "native_cache_hits",
            "native_cache_misses",
            "native_cache_size",
            "native_loaded_artifacts",
        ):
            assert key in cache, key
        assert cache["native_cache_size"] >= 1
        assert cache["native_loaded_artifacts"] >= 1


@requires_compiler
class TestExecutionStrategies:
    def test_single_pass_launch_when_serial(self, cache_dir):
        """With one worker thread, a multi-tile map step runs as ONE launch.

        A compiled loop nest covers any geometry in a single call, so
        per-tile slicing only buys thread-level parallelism; with no
        threads to feed, the backend skips it entirely.
        """
        program, a, b = build_chain()
        with config_override(
            **TINY_TILES, parallel_num_threads=1, codegen_cache_dir=cache_dir
        ):
            native = ExecutionEngine(backend="native", optimize=True)
            parallel = ExecutionEngine(backend="parallel", optimize=True)
            native_result = native.execute(program)
            parallel_result = parallel.execute(program)
        plan = native.last_plan
        step = next(
            s for s in plan.tiling.steps if isinstance(s, TiledMapStep)
        )
        assert len(step.spans) > 1  # the decomposition did tile
        assert parallel_result.stats.tiles_executed == len(step.spans)
        assert native_result.stats.tiles_executed == 1  # ...but one launch ran
        assert native_result.stats.native_kernel_launches == 1
        assert np.array_equal(native_result.value(a), parallel_result.value(a))

    def test_multi_thread_collapses_to_one_mt_launch(self, cache_dir):
        """With threads>1, a multi-tile map step is ONE repro_kernel_mt call.

        The thread split happens inside the compiled artifact's worker
        pool; Python never slices tiles or marshals per-tile arguments.
        On hosts whose toolchain supports neither pthreads nor OpenMP the
        artifact is serial-mode and the inherited per-tile path runs — the
        counter assert is gated on the probed mode.
        """
        from repro.codegen.compiler import select_mt_mode

        program, a, b = build_chain()
        with config_override(
            **TINY_TILES,
            parallel_num_threads=2,
            codegen_threads=2,
            codegen_cache_dir=cache_dir,
        ):
            native = ExecutionEngine(backend="native", optimize=True)
            result = native.execute(program)
        step = next(
            s for s in native.last_plan.tiling.steps if isinstance(s, TiledMapStep)
        )
        assert len(step.spans) > 1  # the decomposition did tile
        assert result.stats.native_kernel_launches == 1  # one resolved launchable
        expected = _oracle(program, (a, b))
        assert np.array_equal(result.value(a), expected[0])
        assert np.array_equal(result.value(b), expected[1])
        if select_mt_mode() != "serial":
            assert result.stats.tiles_executed == 1
            assert result.stats.native_mt_launches == 1
        else:
            assert result.stats.tiles_executed == len(step.spans)
            assert result.stats.native_mt_launches == 0

    def test_codegen_threads_knob_overrides_parallel_threads(self, cache_dir):
        """codegen_threads>1 fires the in-kernel path even at one worker.

        The knob is the runtime thread count of the artifact's pool — it
        must not depend on how many Python-side workers the tiled backend
        would have used (on a 1-CPU host that resolves to one).
        """
        from repro.codegen.compiler import select_mt_mode

        if select_mt_mode() == "serial":
            pytest.skip("toolchain builds serial-mode artifacts only")
        program, a, b = build_chain()
        expected = _oracle(program, (a, b))
        with config_override(
            **TINY_TILES,
            parallel_num_threads=1,
            codegen_threads=4,
            codegen_cache_dir=cache_dir,
        ):
            native = ExecutionEngine(backend="native", optimize=True)
            result = native.execute(program)
        assert result.stats.native_mt_launches >= 1
        assert np.array_equal(result.value(a), expected[0])
        assert np.array_equal(result.value(b), expected[1])

    def test_instruction_local_temporaries_are_elided(self, cache_dir):
        """A freed, never-synced temp inside one fused kernel stays virtual.

        The tiling analysis marks its slot instruction-local; the compiled
        kernel receives no pointer for it and its stores never reach
        memory — results must be identical anyway.
        """
        builder = ProgramBuilder()
        a = builder.new_vector(LENGTH)
        t = builder.new_vector(LENGTH)
        out = builder.new_vector(LENGTH)
        builder.identity(a, 2.0)
        builder.multiply(t, a, 3.0)
        builder.add(out, t, 1.0)
        builder.free(t)
        builder.sync(out)
        program = builder.build()
        expected = _oracle(program, (out,))
        with config_override(**TINY_TILES, codegen_cache_dir=cache_dir):
            engine = ExecutionEngine(backend="native", optimize=True)
            result = engine.execute(program)
        local = [
            step.local_slots
            for step in engine.last_plan.tiling.steps
            if isinstance(step, TiledMapStep) and step.local_slots
        ]
        assert local, "no tiled step marked the temporary instruction-local"
        assert result.stats.native_kernel_launches > 0
        assert np.array_equal(result.value(out), expected[0])

    def test_synced_temporaries_are_not_elided(self, cache_dir):
        """Syncing the intermediate makes it observable: no elision."""
        builder = ProgramBuilder()
        a = builder.new_vector(LENGTH)
        t = builder.new_vector(LENGTH)
        out = builder.new_vector(LENGTH)
        builder.identity(a, 2.0)
        builder.multiply(t, a, 3.0)
        builder.add(out, t, 1.0)
        builder.sync(t)
        builder.sync(out)
        program = builder.build()
        expected = _oracle(program, (t, out))
        with config_override(**TINY_TILES, codegen_cache_dir=cache_dir):
            engine = ExecutionEngine(backend="native", optimize=True)
            result = engine.execute(program)
        for step in engine.last_plan.tiling.steps:
            if isinstance(step, TiledMapStep):
                assert not step.local_slots
        assert np.array_equal(result.value(t), expected[0])
        assert np.array_equal(result.value(out), expected[1])


@requires_compiler
class TestCompiledReductions:
    """Tiled reductions executing through compiled C kernels."""

    def _run(self, program, cache_dir, **overrides):
        with config_override(
            **TINY_TILES, codegen_cache_dir=cache_dir, **overrides
        ):
            engine = ExecutionEngine(backend="native", optimize=True)
            return engine, engine.execute(program)

    def test_combine_sum_compiles_and_matches(self, cache_dir):
        builder = ProgramBuilder()
        x = builder.new_vector(500)
        s = builder.new_vector(1)
        builder.identity(x, 1.25)
        builder.add(x, x, 0.5)
        builder.add_reduce(s, x, axis=0)
        builder.sync(s)
        program = builder.build()
        expected = _oracle(program, (s,))
        _, result = self._run(program, cache_dir)
        assert result.stats.native_reductions_compiled == 1
        assert result.stats.native_reduction_fallbacks == 0
        assert np.allclose(result.value(s), expected[0], rtol=1e-6, atol=1e-8)

    def test_nd_reduction_all_axes_compile(self, cache_dir):
        for axis in (0, 1):
            builder = ProgramBuilder()
            matrix = builder.new_matrix(24, 12)
            out = builder.new_vector(12 if axis == 0 else 24)
            builder.identity(matrix, 0.75)
            builder.add(matrix, matrix, 2.0)
            builder.add_reduce(out, matrix, axis=axis)
            builder.sync(out)
            program = builder.build()
            expected = _oracle(program, (out,))
            _, result = self._run(program, cache_dir)
            assert result.stats.native_reductions_compiled == 1, f"axis={axis}"
            assert result.stats.native_reduction_fallbacks == 0, f"axis={axis}"
            assert np.allclose(
                result.value(out), expected[0], rtol=1e-6, atol=1e-8
            ), f"axis={axis}"

    def test_maximum_reduce_is_bitwise(self, cache_dir):
        # min/max reductions are order-insensitive: the compiled result
        # must be bit-identical regardless of chunking or thread count.
        builder = ProgramBuilder()
        matrix = builder.new_matrix(16, 32)
        out = builder.new_vector(16)
        builder.random(matrix, seed=3)
        builder.maximum_reduce(out, matrix, axis=1)
        builder.sync(out)
        program = builder.build()
        expected = _oracle(program, (out,))
        _, result = self._run(program, cache_dir, codegen_threads=4)
        assert result.stats.native_reductions_compiled == 1
        assert np.array_equal(result.value(out), expected[0])

    def test_mt_reduction_matches_parallel_combine_order(self, cache_dir):
        """Threaded combine reduction stays within the reduction contract.

        The artifact's per-chunk partials tree-combine in the tiled
        backend's fixed pairwise order; the result must agree with the
        parallel backend (same relaxation the differential suite uses).
        """
        from repro.codegen.compiler import select_mt_mode

        if select_mt_mode() == "serial":
            pytest.skip("toolchain builds serial-mode artifacts only")
        builder = ProgramBuilder()
        x = builder.new_vector(4096)
        s = builder.new_vector(1)
        builder.random(x, seed=11)
        builder.add_reduce(s, x, axis=0)
        builder.sync(s)
        program = builder.build()
        with config_override(
            **TINY_TILES, codegen_cache_dir=cache_dir, codegen_threads=4
        ):
            native = ExecutionEngine(backend="native", optimize=True)
            result = native.execute(program)
        with config_override(**TINY_TILES):
            parallel = ExecutionEngine(backend="parallel", optimize=True)
            reference = parallel.execute(program)
        assert result.stats.native_reductions_compiled == 1
        assert result.stats.native_mt_launches >= 1
        assert np.allclose(
            result.value(s), reference.value(s), rtol=1e-6, atol=1e-8
        )

    def test_warm_plan_replays_without_reduction_fallbacks(self, cache_dir):
        builder = ProgramBuilder()
        matrix = builder.new_matrix(24, 12)
        out = builder.new_vector(24)
        builder.identity(matrix, 1.5)
        builder.add_reduce(out, matrix, axis=1)
        builder.sync(out)
        program = builder.build()
        with config_override(**TINY_TILES, codegen_cache_dir=cache_dir):
            engine = ExecutionEngine(backend="native", optimize=True)
            cold = engine.execute(program)
            warm = engine.execute(program)
        assert cold.stats.native_reductions_compiled == 1
        assert warm.stats.plan_cache_hits == 1
        assert warm.stats.native_compiles == 0
        assert warm.stats.native_reductions_compiled == 1
        assert warm.stats.native_reduction_fallbacks == 0


@requires_compiler
class TestPlanInteraction:
    def test_prepare_plan_precompiles_and_is_idempotent(self, cache_dir):
        program, a, b = build_chain()
        with config_override(**TINY_TILES, codegen_cache_dir=cache_dir):
            engine = ExecutionEngine(backend="native", optimize=True)
            result = engine.execute(program)
            backend = engine.backend
            plan = engine.last_plan
            # The plan carries its codegen stamp: every kernel form was
            # resolved at plan time, so execution itself compiled nothing
            # beyond what prepare_plan already did.
            assert plan.native_signature is not None
            assert result.stats.native_compiles == backend.native_compiles
            # Re-preparing the same plan under the same signature is a
            # no-op: zero new lookups, zero new compiles.
            misses = backend.native_cache_misses
            compiles = backend.native_compiles
            backend.prepare_plan(plan)
        assert backend.native_cache_misses == misses
        assert backend.native_compiles == compiles

    def test_codegen_toggle_misses_the_plan_cache(self, cache_dir):
        # codegen_enabled is in the config signature: flipping it must
        # compile a fresh plan, not replay one prepared under the other
        # setting.
        program, a, b = build_chain()
        with config_override(**TINY_TILES, codegen_cache_dir=cache_dir):
            engine = ExecutionEngine(backend="native", optimize=True)
            engine.execute(program)
            with config_override(codegen_enabled=False):
                toggled = engine.execute(program)
        assert toggled.stats.plan_cache_hits == 0
        assert toggled.stats.native_kernel_launches == 0

    def test_failed_execution_resets_the_stats_window(self, cache_dir):
        program, a, b = build_chain()
        with config_override(**TINY_TILES, codegen_cache_dir=cache_dir):
            backend = get_backend("native")
            with pytest.raises(Exception):
                backend.execute_plan(object(), program)  # malformed plan
            assert backend._window_start is None
            result = backend.execute(program)  # subsequent runs still window
        assert result.stats.native_kernel_launches > 0
