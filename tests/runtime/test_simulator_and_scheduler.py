"""Tests for the simulated accelerator cost model, backend registry and scheduler."""

import numpy as np
import pytest

from repro.bytecode.builder import ProgramBuilder
from repro.bytecode.instruction import Instruction
from repro.bytecode.opcodes import OpCode
from repro.bytecode.program import Program
from repro.runtime.backend import available_backends, get_backend
from repro.runtime.interpreter import NumPyInterpreter
from repro.runtime.plan import merge_batches, split_into_batches
from repro.runtime.simulator import (
    DEVICE_PROFILES,
    DeviceProfile,
    SimulatedAccelerator,
    instruction_bytes,
    instruction_flops,
    simulate_program_time,
)
from repro.utils.errors import CostModelError, ExecutionError


def simple_program(size=1000, adds=3):
    builder = ProgramBuilder()
    vector = builder.new_vector(size)
    builder.identity(vector, 0)
    for _ in range(adds):
        builder.add(vector, vector, 1)
    builder.sync(vector)
    return builder.build(), vector


class TestDeviceProfiles:
    def test_builtin_profiles_exist(self):
        assert {"gpu", "multicore", "single_core"} <= set(DEVICE_PROFILES)

    def test_roofline_takes_the_maximum(self):
        profile = DeviceProfile("test", 0.0, flops_per_second=10.0, bytes_per_second=1.0)
        assert profile.roofline_time(flops=100, bytes_moved=1) == pytest.approx(10.0)
        assert profile.roofline_time(flops=1, bytes_moved=100) == pytest.approx(100.0)


class TestInstructionCosts:
    def test_flops_scale_with_elements(self):
        program, _ = simple_program(size=1000, adds=1)
        add = program[1]
        assert instruction_flops(add) == 1000.0

    def test_power_is_much_more_expensive_than_multiply(self):
        builder = ProgramBuilder()
        x = builder.new_vector(100)
        y = builder.new_vector(100)
        builder.power(y, x, 10)
        builder.multiply(y, y, x)
        program = builder.build()
        assert instruction_flops(program[0]) > 10 * instruction_flops(program[1])

    def test_extension_flop_models(self):
        builder = ProgramBuilder()
        a = builder.new_matrix(10, 10)
        b = builder.new_vector(10)
        inv = builder.new_matrix(10, 10)
        x = builder.new_vector(10)
        builder.matrix_inverse(inv, a)
        builder.lu_solve(x, a, b)
        program = builder.build()
        inverse_flops = instruction_flops(program[0])
        solve_flops = instruction_flops(program[1])
        assert inverse_flops == pytest.approx(2.0 * 10 ** 3)
        # LU solve is roughly a third of the inversion cost for one RHS.
        assert solve_flops < inverse_flops / 2

    def test_system_instructions_are_free(self):
        program, vector = simple_program()
        sync = program[-1]
        assert instruction_flops(sync) == 0.0
        assert instruction_bytes(sync) == 0.0

    def test_fused_bytes_count_each_operand_once(self):
        program, vector = simple_program(size=1000, adds=3)
        from repro.runtime.kernel import Kernel, partition_into_kernels

        kernel = [k for k in partition_into_kernels(program) if isinstance(k, Kernel)][0]
        fused = kernel.as_instruction()
        # One distinct view of 1000 float64 elements = 8000 bytes.
        assert instruction_bytes(fused) == 8000.0
        # Unfused, the same byte-codes move 7 views' worth of data.
        unfused_total = sum(instruction_bytes(instr) for instr in kernel.instructions)
        assert unfused_total == 7 * 8000.0

    def test_unknown_opcode_raises_cost_model_error(self):
        builder = ProgramBuilder()
        v = builder.new_matrix(2, 2)
        src = builder.new_matrix(2, 2)
        lu = Instruction(OpCode.BH_LU, (v, src))
        assert instruction_flops(lu) > 0  # BH_LU is modelled
        fused_without_payload = Instruction(OpCode.BH_NONE, ())
        assert instruction_flops(fused_without_payload) == 0.0


class TestSimulatedTime:
    def test_fewer_instructions_cost_less(self):
        long_program, _ = simple_program(size=100_000, adds=8)
        short_program, _ = simple_program(size=100_000, adds=1)
        profile = DEVICE_PROFILES["gpu"]
        assert simulate_program_time(short_program, profile) < simulate_program_time(
            long_program, profile
        )

    def test_launch_overhead_dominates_small_arrays(self):
        tiny, _ = simple_program(size=8, adds=4)
        profile = DEVICE_PROFILES["gpu"]
        total = simulate_program_time(tiny, profile)
        launches = 5  # identity + 4 adds
        assert total == pytest.approx(launches * profile.kernel_launch_overhead_s, rel=0.05)

    def test_backend_reports_simulated_time_and_correct_values(self):
        program, vector = simple_program(size=64, adds=2)
        backend = SimulatedAccelerator("gpu")
        result = backend.execute(program)
        assert np.all(result.value(vector) == 2.0)
        assert result.stats.simulated_time_seconds > 0
        assert result.stats.simulated_time_seconds == pytest.approx(backend.estimate(program))

    def test_unknown_profile_rejected(self):
        with pytest.raises(CostModelError):
            SimulatedAccelerator("quantum")


class TestBackendRegistry:
    def test_available_backends(self):
        assert {"interpreter", "jit", "simulator"} <= set(available_backends())

    def test_get_backend_by_name(self):
        assert isinstance(get_backend("interpreter"), NumPyInterpreter)

    def test_get_backend_passthrough(self):
        backend = NumPyInterpreter()
        assert get_backend(backend) is backend

    def test_unknown_backend(self):
        with pytest.raises(ExecutionError):
            get_backend("tpu")


class TestScheduler:
    def test_split_on_sync(self):
        builder = ProgramBuilder()
        a = builder.new_vector(4)
        b = builder.new_vector(4)
        builder.identity(a, 1)
        builder.sync(a)
        builder.identity(b, 2)
        builder.sync(b)
        batches = split_into_batches(builder.build())
        assert len(batches) == 2
        assert all(batch[-1].opcode is OpCode.BH_SYNC for batch in batches)

    def test_trailing_instructions_form_final_batch(self):
        builder = ProgramBuilder()
        a = builder.new_vector(4)
        builder.identity(a, 1)
        builder.sync(a)
        builder.add(a, a, 1)
        batches = split_into_batches(builder.build())
        assert len(batches) == 2
        assert len(batches[1]) == 1

    def test_no_split(self):
        program, _ = simple_program()
        batches = split_into_batches(program, split_on_sync=False)
        assert len(batches) == 1
        assert len(batches[0]) == len(program)

    def test_merge_round_trip(self):
        program, _ = simple_program()
        assert merge_batches(split_into_batches(program)) == program

    def test_empty_program(self):
        assert split_into_batches(Program()) == []
