"""Tests for the tile decomposition and the tiled parallel backend."""

import numpy as np
import pytest

from repro.bytecode.builder import ProgramBuilder
from repro.bytecode.instruction import Instruction
from repro.bytecode.opcodes import OpCode
from repro.bytecode.program import Program
from repro.bytecode.view import View
from repro.runtime import parallel as parallel_module
from repro.runtime.engine import ExecutionEngine
from repro.runtime.interpreter import NumPyInterpreter
from repro.runtime.memory import MemoryManager
from repro.runtime.parallel import ParallelBackend
from repro.runtime.tiling import (
    SerialStep,
    TiledMapStep,
    TiledReduceStep,
    TileSpan,
    decompose,
    slice_view,
    spans_for,
)
from repro.utils.config import config_override, get_config


def elementwise_program(length=64, ops=4):
    builder = ProgramBuilder()
    a = builder.new_vector(length)
    b = builder.new_vector(length)
    builder.identity(a, 0.5)
    builder.identity(b, 2.0)
    for i in range(ops):
        (builder.add if i % 2 else builder.multiply)(a, a, b)
    builder.sync(a)
    return builder.build(), a


class TestSpansAndSlicing:
    def test_spans_cover_rows_exactly(self):
        spans = spans_for(rows=10, row_elements=1, tile_elements=4)
        assert sum(span.count for span in spans) == 10
        assert spans[0].start == 0
        for prev, nxt in zip(spans, spans[1:]):
            assert nxt.start == prev.start + prev.count

    def test_spans_balance_like_partition_length(self):
        # 10 rows in tiles of ~4 -> 3 tiles block-distributed as 4/3/3.
        spans = spans_for(rows=10, row_elements=1, tile_elements=4)
        assert [span.count for span in spans] == [4, 3, 3]

    def test_row_elements_scale_tile_rows(self):
        # 8 rows of 32 elements with 64-element tiles -> 2 rows per tile.
        spans = spans_for(rows=8, row_elements=32, tile_elements=64)
        assert [span.count for span in spans] == [2, 2, 2, 2]

    def test_single_span_when_tile_larger_than_data(self):
        assert spans_for(rows=5, row_elements=1, tile_elements=1000) == (TileSpan(0, 5),)

    def test_min_tiles_feeds_every_worker(self):
        # Large tiles would give 1 tile; min_tiles=4 (the worker count)
        # still splits the rows so no thread idles.
        spans = spans_for(rows=100, row_elements=1, tile_elements=1000, min_tiles=4)
        assert len(spans) == 4
        # ... but never more tiles than rows.
        assert len(spans_for(rows=3, row_elements=1, tile_elements=1, min_tiles=8)) == 3

    def test_slice_view_first_axis(self):
        builder = ProgramBuilder()
        matrix = builder.new_matrix(6, 4)
        part = slice_view(matrix, TileSpan(2, 3))
        assert part.offset == matrix.offset + 2 * matrix.strides[0]
        assert part.shape == (3, 4)
        assert part.strides == matrix.strides

    def test_slice_view_other_axis(self):
        builder = ProgramBuilder()
        matrix = builder.new_matrix(6, 4)
        part = slice_view(matrix, TileSpan(1, 2), axis=1)
        assert part.offset == matrix.offset + 1 * matrix.strides[1]
        assert part.shape == (6, 2)


class TestDecomposition:
    def test_large_elementwise_is_tiled(self):
        program, _ = elementwise_program(length=64)
        with config_override(
            parallel_tile_elements=16,
            parallel_serial_threshold=8,
            parallel_num_threads=1,  # pin: tile counts must not vary per host
        ):
            tiling = decompose(program)
        maps = [s for s in tiling.steps if isinstance(s, TiledMapStep)]
        assert maps, "expected at least one tiled map step"
        assert all(len(step.spans) == 4 for step in maps)

    def test_below_threshold_is_serial(self):
        program, _ = elementwise_program(length=64)
        with config_override(parallel_tile_elements=16, parallel_serial_threshold=1000):
            tiling = decompose(program)
        assert not tiling.tiled_steps
        assert any(s.reason == "below serial threshold" for s in tiling.serial_steps)

    def test_fused_kernel_is_tiled_as_one_step(self):
        program, _ = elementwise_program(length=64, ops=6)
        report = ExecutionEngine(backend="interpreter")._build_pipeline().run(program)
        fused = report.optimized
        assert fused.count(OpCode.BH_FUSED, include_fused=False) >= 1
        with config_override(parallel_tile_elements=16, parallel_serial_threshold=8):
            tiling = decompose(fused)
        fused_indices = [
            i for i, instr in enumerate(fused) if instr.opcode is OpCode.BH_FUSED
        ]
        for index in fused_indices:
            assert isinstance(tiling.steps[index], TiledMapStep)

    def test_shifted_overlapping_windows_fall_back_to_serial(self):
        # out and input are different, overlapping windows of one base:
        # tiles would read rows another tile writes.
        builder = ProgramBuilder()
        base = builder.new_base(65)
        lo = View(base, 0, (64,), (1,))
        hi = View(base, 1, (64,), (1,))
        builder.emit(OpCode.BH_ADD, lo, hi, 1.0)
        program = builder.build()
        with config_override(parallel_tile_elements=8, parallel_serial_threshold=4):
            tiling = decompose(program)
        assert isinstance(tiling.steps[0], SerialStep)
        assert tiling.steps[0].reason == "overlapping windows of one base"

    def test_fused_kernel_with_cross_window_dependency_is_serial_and_bitwise(self):
        # Regression: a fused kernel whose later instruction reads a view
        # overlapping an earlier instruction's output through a *different*
        # window must never be row-tiled — a tile would read rows another
        # tile writes.  (The fusion clusterer refuses to build such kernels
        # since the can_accept fix, but hand-built or legacy BH_FUSED
        # byte-codes can still carry them.)
        rows, cols = 16, 8
        builder = ProgramBuilder()
        base = builder.new_base((rows + 1) * cols)
        lo = View(base, 0, (rows, cols))
        hi = View(base, cols, (rows, cols))  # shifted one row down
        out = builder.new_matrix(rows, cols)
        write_lo = Instruction(OpCode.BH_ADD, (lo, lo, 1.0))
        read_hi = Instruction(OpCode.BH_MULTIPLY, (out, hi, 0.5))
        program = Program(
            [
                Instruction(OpCode.BH_IDENTITY, (View.full(base), 2.0)),
                Instruction(OpCode.BH_FUSED, (), kernel=[write_lo, read_hi]),
                Instruction(OpCode.BH_SYNC, (out,)),
            ]
        )
        with config_override(parallel_tile_elements=8, parallel_serial_threshold=4):
            tiling = decompose(program)
            assert isinstance(tiling.steps[1], SerialStep)
            assert tiling.steps[1].reason == "overlapping windows of one base"
            # The serial fallback must agree with the interpreter oracle
            # bit for bit.
            reference = NumPyInterpreter().execute(program)
            result = ParallelBackend(num_threads=4).execute(program)
        assert np.array_equal(reference.value(out), result.value(out))
        assert np.array_equal(
            reference.value(View.full(base)), result.value(View.full(base))
        )

    def test_shape_mismatch_falls_back_to_serial(self):
        builder = ProgramBuilder()
        matrix = builder.new_matrix(8, 8)
        row = builder.new_vector(8)
        builder.emit(OpCode.BH_ADD, matrix, matrix, row)  # broadcast-style read
        with config_override(parallel_tile_elements=8, parallel_serial_threshold=4):
            tiling = decompose(builder.build())
        assert isinstance(tiling.steps[0], SerialStep)

    def test_reduction_modes(self):
        builder = ProgramBuilder()
        matrix = builder.new_matrix(16, 8)
        row_out = builder.new_vector(8)
        col_out = builder.new_vector(16)
        vector = builder.new_vector(64)
        scalar = builder.new_vector(1)
        builder.add_reduce(row_out, matrix, axis=0)
        builder.add_reduce(col_out, matrix, axis=1)
        builder.add_reduce(scalar, vector, axis=0)
        with config_override(
            parallel_tile_elements=16,
            parallel_serial_threshold=4,
            parallel_num_threads=1,  # pin: tile counts must not vary per host
        ):
            tiling = decompose(builder.build())
        axis0, axis1, full = tiling.steps
        # axis-0 reduce tiles along input columns (bit-identical slices).
        assert isinstance(axis0, TiledReduceStep) and not axis0.combine
        assert axis0.tile_axis == 1
        # axis-1 reduce tiles along input rows.
        assert isinstance(axis1, TiledReduceStep) and not axis1.combine
        assert axis1.tile_axis == 0
        # full 1-D reduce needs combined partials.
        assert isinstance(full, TiledReduceStep) and full.combine
        assert len(full.spans) == 4

    def test_generators_linalg_and_system_are_serial(self):
        builder = ProgramBuilder()
        matrix = builder.new_matrix(16, 16)
        inverse = builder.new_matrix(16, 16)
        builder.random(matrix, seed=3)
        builder.matrix_inverse(inverse, matrix)
        builder.sync(inverse)
        with config_override(parallel_serial_threshold=4):
            tiling = decompose(builder.build())
        assert [step.reason for step in tiling.steps] == [
            "generator",
            "extension",
            "system",
        ]


def _parity(program, views, **overrides):
    """Assert the parallel backend matches the interpreter bit-for-bit."""
    with config_override(**overrides):
        expected = ExecutionEngine(backend="interpreter", optimize=True).execute(
            program.copy()
        )
        actual = ExecutionEngine(backend="parallel", optimize=True).execute(
            program.copy()
        )
    for view in views:
        assert np.array_equal(expected.value(view), actual.value(view), equal_nan=True)
    return actual


class TestParallelExecution:
    def test_matches_interpreter_on_fused_chain(self):
        program, a = elementwise_program(length=4096, ops=8)
        result = _parity(
            program, [a], parallel_tile_elements=512, parallel_serial_threshold=16
        )
        assert result.stats.tiles_executed >= 8
        assert result.stats.tiled_instructions > 0
        assert result.stats.threads_used >= 1

    def test_matches_interpreter_with_multiple_threads(self):
        program, a = elementwise_program(length=4096, ops=8)
        result = _parity(
            program,
            [a],
            parallel_tile_elements=256,
            parallel_serial_threshold=16,
            parallel_num_threads=4,
        )
        assert result.stats.threads_used == 4

    def test_matches_interpreter_on_shifted_stencil_views(self):
        # Heat-equation-shaped kernel: shifted reads of one base feeding
        # writes into distinct bases; splittable because no written base
        # is also read through a different window.
        builder = ProgramBuilder()
        grid = builder.new_matrix(34, 32)
        up = View(grid.base, 0, (32, 32), (32, 1))
        down = View(grid.base, 64, (32, 32), (32, 1))
        acc = builder.new_matrix(32, 32)
        builder.identity(grid, 1.5)
        builder.emit(OpCode.BH_ADD, acc, up, down)
        builder.emit(OpCode.BH_MULTIPLY, acc, acc, 0.25)
        builder.sync(acc)
        result = _parity(
            builder.build(),
            [acc],
            parallel_tile_elements=128,
            parallel_serial_threshold=16,
        )
        assert result.stats.tiles_executed > 0

    def test_matches_interpreter_on_strided_views(self):
        builder = ProgramBuilder()
        base = builder.new_base(256)
        evens = View(base, 0, (128,), (2,))
        odds = View(base, 1, (128,), (2,))
        out = builder.new_vector(128)
        builder.identity(View.full(base), 0.75)
        builder.emit(OpCode.BH_ADD, out, evens, odds)
        builder.sync(out)
        _parity(
            builder.build(),
            [out],
            parallel_tile_elements=32,
            parallel_serial_threshold=8,
        )

    def test_reduction_slices_are_bit_identical(self):
        builder = ProgramBuilder()
        matrix = builder.new_matrix(32, 16)
        row_out = builder.new_vector(16)
        col_out = builder.new_vector(32)
        builder.random(matrix, seed=11)
        builder.add_reduce(row_out, matrix, axis=0)
        builder.maximum_reduce(col_out, matrix, axis=1)
        builder.sync(row_out)
        builder.sync(col_out)
        result = _parity(
            builder.build(),
            [row_out, col_out],
            parallel_tile_elements=64,
            parallel_serial_threshold=8,
            parallel_num_threads=3,
        )
        assert result.stats.serial_fallbacks == 1  # the BH_RANDOM generator

    def test_combined_1d_reduction_matches_within_tolerance(self):
        builder = ProgramBuilder()
        vector = builder.new_vector(10000)
        total = builder.new_vector(1)
        builder.random(vector, seed=5)
        builder.add_reduce(total, vector, axis=0)
        builder.sync(total)
        program = builder.build()
        with config_override(parallel_tile_elements=512, parallel_serial_threshold=8):
            expected = ExecutionEngine(backend="interpreter", optimize=True).execute(
                program.copy()
            )
            actual = ExecutionEngine(backend="parallel", optimize=True).execute(
                program.copy()
            )
        np.testing.assert_allclose(
            actual.value(total), expected.value(total), rtol=1e-12
        )

    def test_serial_program_executes_through_interpreter_fallback(self):
        builder = ProgramBuilder()
        matrix = builder.new_matrix(8, 8)
        inverse = builder.new_matrix(8, 8)
        identity_check = builder.new_matrix(8, 8)
        builder.random(matrix, seed=2)
        builder.add(matrix, matrix, 8.0)  # diagonally dominant enough
        builder.matrix_inverse(inverse, matrix)
        builder.matmul(identity_check, matrix, inverse)
        builder.sync(identity_check)
        program = builder.build()
        result = ExecutionEngine(backend="parallel", optimize=True).execute(program)
        np.testing.assert_allclose(
            result.value(identity_check), np.eye(8), atol=1e-8
        )
        assert result.stats.serial_fallbacks > 0

    def test_num_threads_resolution_order(self):
        backend = ParallelBackend(num_threads=3)
        assert backend.num_threads() == 3
        backend = ParallelBackend()
        with config_override(parallel_num_threads=5):
            assert backend.num_threads() == 5
        assert ParallelBackend().num_threads() >= 1

    def test_set_backend_releases_the_previous_pool(self):
        backend = ParallelBackend(num_threads=2)
        engine = ExecutionEngine(backend=backend, optimize=True)
        program, _ = elementwise_program(length=4096)
        with config_override(parallel_tile_elements=512, parallel_serial_threshold=16):
            engine.execute(program)
        assert backend._pool is not None
        engine.set_backend("interpreter")
        assert backend._pool is None  # worker threads released eagerly

    def test_pool_is_persistent_and_resizes_on_config_change(self):
        backend = ParallelBackend()
        pool_a = backend._executor(2)
        assert backend._executor(2) is pool_a
        pool_b = backend._executor(3)
        assert pool_b is not pool_a
        backend.close()
        assert backend._pool is None


class TestPlanTimeTiling:
    def test_decomposition_computed_once_per_plan(self, monkeypatch):
        calls = []
        original = parallel_module.decompose

        def counting(program, config=None):
            calls.append(1)
            return original(program, config)

        monkeypatch.setattr(parallel_module, "decompose", counting)
        with config_override(parallel_tile_elements=64, parallel_serial_threshold=8):
            engine = ExecutionEngine(backend="parallel", optimize=True)
            first, _ = elementwise_program(length=512)
            engine.execute(first)
            assert len(calls) == 1
            plan = engine.last_plan
            assert plan.tiling is not None
            # Structurally identical flush on fresh bases: plan hit, and
            # the decomposition is NOT recomputed.
            second, _ = elementwise_program(length=512)
            result = engine.execute(second)
            assert result.stats.plan_cache_hits == 1
            assert len(calls) == 1
            assert engine.last_plan.tiling is plan.tiling

    def test_tile_config_change_invalidates_plan_and_retiles(self):
        with config_override(
            parallel_tile_elements=64,
            parallel_serial_threshold=8,
            parallel_num_threads=1,  # pin: the 2x tile ratio below is exact
        ):
            engine = ExecutionEngine(backend="parallel", optimize=True)
            program, _ = elementwise_program(length=512)
            coarse = engine.execute(program)
            assert coarse.stats.plan_cache_misses == 1
            with config_override(parallel_tile_elements=32):
                fine = engine.execute(elementwise_program(length=512)[0])
            # The config change must miss (re-plan + re-tile), not replay
            # the stale coarse decomposition.
            assert fine.stats.plan_cache_misses == 1
            assert fine.stats.tiles_executed == 2 * coarse.stats.tiles_executed

    def test_differently_configured_instance_retiles_cached_plan(self):
        # Constructor overrides are invisible to the engine's plan-cache
        # key (same backend name, same global config), so the plan *hits* —
        # but the new instance must re-tile, never replay the stale
        # decomposition computed under the old tile size.
        with config_override(parallel_serial_threshold=8, parallel_num_threads=1):
            engine = ExecutionEngine(
                backend=ParallelBackend(tile_elements=256), optimize=True
            )
            coarse = engine.execute(elementwise_program(length=512)[0])
            assert coarse.stats.tiles_executed == 2
            engine.set_backend(ParallelBackend(tile_elements=64))
            fine = engine.execute(elementwise_program(length=512)[0])
            assert fine.stats.plan_cache_hits == 1
            assert fine.stats.tiles_executed == 8

    def test_planless_executions_cache_decompositions(self):
        backend = ParallelBackend()
        program, _ = elementwise_program(length=512)
        with config_override(
            plan_cache_enabled=False,
            parallel_tile_elements=64,
            parallel_serial_threshold=8,
        ):
            backend.execute(program.copy())
            backend.execute(program.copy())
        stats = backend.cache_stats()
        assert stats["tiling_cache_misses"] == 1
        assert stats["tiling_cache_hits"] == 1


class TestFrontendAndCLI:
    def test_session_with_parallel_backend(self):
        from repro.frontend import ones
        from repro.frontend.session import reset_session

        with config_override(parallel_tile_elements=128, parallel_serial_threshold=16):
            session = reset_session(backend="parallel")
            a = ones((64, 64))
            b = a * 2.0 + 1.0
            values = b.to_numpy()
        np.testing.assert_array_equal(values, np.full((64, 64), 3.0))
        total = session.total_stats()
        assert total.backend_name == "parallel"
        assert total.tiles_executed > 0

    def test_cli_parallel_backend_with_threads(self, capsys, tmp_path):
        from repro.tools.cli import main

        listing = tmp_path / "listing.bh"
        listing.write_text(
            "BH_IDENTITY a0[0:16384:1] 0\n"
            "BH_ADD a0[0:16384:1] a0[0:16384:1] 1\n"
            "BH_ADD a0[0:16384:1] a0[0:16384:1] 1\n"
            "BH_SYNC a0[0:16384:1]\n"
        )
        exit_code = main(
            [str(listing), "--backend", "parallel", "--threads", "2", "--repeat", "3"]
        )
        captured = capsys.readouterr().out
        assert exit_code == 0
        assert "execution (parallel backend, 3 run(s))" in captured
        assert "tiling:" in captured
        assert "thread(s)" in captured
        assert "tile templates:" in captured

    def test_cli_rejects_non_positive_threads(self, capsys, tmp_path):
        from repro.tools.cli import main

        listing = tmp_path / "listing.bh"
        listing.write_text("BH_IDENTITY a0[0:8:1] 0\nBH_SYNC a0[0:8:1]\n")
        exit_code = main([str(listing), "--backend", "parallel", "--threads", "0"])
        assert exit_code == 1
        assert "--threads" in capsys.readouterr().err
