"""Fixtures for the concurrency suite: deadlock watchdog and workloads.

The stress tests exercise real threads against shared locks, so a bug can
manifest as a hang rather than a failure.  ``pytest-timeout`` is not part
of the environment, so every test in this directory runs under a
``SIGALRM`` watchdog: if a test exceeds the budget, the handler dumps all
thread stacks (``faulthandler``) and raises in the main thread, turning a
silent deadlock into a diagnosable failure.
"""

from __future__ import annotations

import faulthandler
import signal

import pytest

from repro.bytecode.builder import ProgramBuilder

#: Generous per-test budget: the suite's slowest test takes a few seconds,
#: so anything hitting this is wedged, not slow.
WATCHDOG_SECONDS = 120


@pytest.fixture(autouse=True)
def deadlock_watchdog():
    """Fail (with all thread stacks) instead of hanging forever."""
    if not hasattr(signal, "SIGALRM"):  # pragma: no cover - non-POSIX hosts
        yield
        return

    def fire(signum, frame):
        faulthandler.dump_traceback()
        raise RuntimeError(
            f"service test exceeded the {WATCHDOG_SECONDS}s deadlock watchdog"
        )

    previous = signal.signal(signal.SIGALRM, fire)
    signal.setitimer(signal.ITIMER_REAL, WATCHDOG_SECONDS)
    try:
        yield
    finally:
        signal.setitimer(signal.ITIMER_REAL, 0)
        signal.signal(signal.SIGALRM, previous)


def chain_program(size=32, adds=3):
    """A fresh identity→add→multiply chain; new base arrays every call."""
    builder = ProgramBuilder()
    vector = builder.new_vector(size)
    result = builder.new_vector(size)
    builder.identity(vector, 0)
    for _ in range(adds):
        builder.add(vector, vector, 1)
    builder.multiply(result, vector, vector)
    builder.sync(result)
    return builder.build()


@pytest.fixture
def program():
    return chain_program()
