"""Regression tests for the codegen compile-once latch.

Two properties, both load-bearing for the multi-tenant service:

* **Compile-once per digest**: concurrent resolvers of the same generated
  source dedupe to exactly one compiler invocation; the losers wait on the
  per-digest latch and report a ``"memory"`` outcome.
* **No cross-digest serialization**: the module lock is held only for dict
  surgery, never across a compile — resolvers of *distinct* digests run
  their compilers concurrently.  (The naive fix — holding the module lock
  for the whole resolve — would pass the first property and fail this one.)

The compiler itself is faked, so these run without a toolchain and at
deterministic speed.
"""

import itertools
import threading

import pytest

import repro.codegen.cache as cache
from repro.codegen.compiler import CodegenError

_SOURCE_COUNTER = itertools.count()


def unique_source(tag):
    """A fresh never-before-seen source text (fresh digest) per call."""
    return f"/* {tag} {next(_SOURCE_COUNTER)} */ void kernel(void) {{}}"


class FakeCompiled:
    """Stands in for CompiledKernel; identity is what the tests assert on."""

    def __init__(self, source):
        self.source = source


@pytest.fixture
def fresh_cache(monkeypatch):
    """Empty in-process memo, compiler 'available', compiles faked."""
    cache.clear_memory_cache()
    monkeypatch.setattr(cache, "find_c_compiler", lambda: "cc")
    yield
    cache.clear_memory_cache()


class TestCompileOnceLatch:
    def test_same_digest_compiles_exactly_once(self, fresh_cache, monkeypatch):
        compiles = []
        compile_lock = threading.Lock()
        started = threading.Event()
        release = threading.Event()

        def fake_compile(source, opt_level, mt_mode):
            with compile_lock:
                compiles.append(source)
            started.set()
            release.wait()  # hold the latch while the other threads arrive
            return FakeCompiled(source)

        monkeypatch.setattr(cache, "_compile_in_memory", fake_compile)
        source = unique_source("same-digest")
        outcomes = []
        kernels = []
        record = threading.Lock()

        def resolve():
            kernel, outcome = cache.get_compiled_kernel(source, use_disk=False)
            with record:
                outcomes.append(outcome)
                kernels.append(kernel)

        threads = [threading.Thread(target=resolve) for _ in range(4)]
        threads[0].start()
        started.wait()
        # The builder is inside the (held-open) compile; the rest must
        # queue on the latch rather than compile in parallel.
        for thread in threads[1:]:
            thread.start()
        release_timer = threading.Timer(0.1, release.set)
        release_timer.start()
        for thread in threads:
            thread.join()
        release_timer.join()

        assert len(compiles) == 1, "the same digest was compiled more than once"
        assert sorted(outcomes) == ["compiled", "memory", "memory", "memory"]
        assert all(kernel is kernels[0] for kernel in kernels)

    def test_distinct_digests_compile_concurrently(self, fresh_cache, monkeypatch):
        # Both compilers must be inside their invocation at the same time.
        # Under the old design (module lock held across the compile) the
        # second compile cannot start until the first returns, the barrier
        # times out, and this test fails instead of deadlocking.
        barrier = threading.Barrier(2, timeout=10)

        def fake_compile(source, opt_level, mt_mode):
            barrier.wait()
            return FakeCompiled(source)

        monkeypatch.setattr(cache, "_compile_in_memory", fake_compile)
        sources = [unique_source("distinct-a"), unique_source("distinct-b")]
        outcomes = []
        record = threading.Lock()
        failures = []

        def resolve(source):
            try:
                _, outcome = cache.get_compiled_kernel(source, use_disk=False)
                with record:
                    outcomes.append(outcome)
            except threading.BrokenBarrierError:  # pragma: no cover - the bug
                failures.append(source)

        threads = [threading.Thread(target=resolve, args=(s,)) for s in sources]
        for thread in threads:
            thread.start()
        for thread in threads:
            thread.join()
        assert failures == [], "distinct digests were serialized through one compile"
        assert outcomes == ["compiled", "compiled"]

    def test_failed_builder_releases_latch_and_waiter_retries(
        self, fresh_cache, monkeypatch
    ):
        attempts = []
        attempt_lock = threading.Lock()
        first_inside = threading.Event()
        fail_first = threading.Event()
        fail_first.set()

        def flaky_compile(source, opt_level, mt_mode):
            with attempt_lock:
                attempts.append(source)
                should_fail = fail_first.is_set()
                fail_first.clear()
            first_inside.set()
            if should_fail:
                raise CodegenError("injected compiler failure")
            return FakeCompiled(source)

        monkeypatch.setattr(cache, "_compile_in_memory", flaky_compile)
        source = unique_source("flaky")
        results = {}

        def resolve(name):
            try:
                kernel, outcome = cache.get_compiled_kernel(source, use_disk=False)
                results[name] = outcome
            except CodegenError:
                results[name] = "raised"

        first = threading.Thread(target=resolve, args=("first",))
        first.start()
        first_inside.wait()
        second = threading.Thread(target=resolve, args=("second",))
        second.start()
        first.join()
        second.join()

        # The first builder failed and released the latch; the second woke,
        # found no kernel in the memo, claimed the builder role and
        # succeeded.  The digest is never wedged.
        assert results["first"] == "raised"
        assert results["second"] == "compiled"
        assert len(attempts) == 2
        # And the digest now serves from memory like any healthy entry.
        _, outcome = cache.get_compiled_kernel(source, use_disk=False)
        assert outcome == "memory"

    def test_lifecycle_memory_hit_then_cold_start(self, fresh_cache, monkeypatch):
        monkeypatch.setattr(
            cache,
            "_compile_in_memory",
            lambda source, opt_level, mt_mode: FakeCompiled(source),
        )
        source = unique_source("lifecycle")
        kernel, outcome = cache.get_compiled_kernel(source, use_disk=False)
        assert outcome == "compiled"
        again, outcome = cache.get_compiled_kernel(source, use_disk=False)
        assert outcome == "memory"
        assert again is kernel
        # Cold start: dropping the memo forces a recompile, and the
        # in-flight table must be empty (no leaked latches).
        assert cache._inflight == {}
        cache.clear_memory_cache()
        _, outcome = cache.get_compiled_kernel(source, use_disk=False)
        assert outcome == "compiled"
