"""Regression tests for the plan-cache double-optimize race (shared engine).

Before the per-fingerprint in-flight latch, two sessions first-flushing the
same structural program through one shared engine would *both* miss the
cache, *both* run the full optimization pipeline, and *both* insert —
wasting an optimizer run, skewing the LRU order and making the
plan-build counters lie.  These tests pin the latch behaviour: exactly one
build per fingerprint no matter how many threads race the first flush, and
a failed builder never wedges the fingerprint.
"""

import threading
import time

import numpy as np
import pytest

from repro.core.pipeline import default_pipeline
from repro.runtime.engine import ExecutionEngine
from repro.runtime.memory import MemoryManager
from repro.utils.errors import RewriteError

from tests.service.conftest import chain_program


class CountingPipeline:
    """Wraps the default pipeline; counts runs and can dawdle or fail."""

    def __init__(self, delay=0.0, fail_first=False):
        self._inner = default_pipeline()
        self._count_lock = threading.Lock()
        self.runs = 0
        self.delay = delay
        self._fail_first = fail_first

    def run(self, program):
        with self._count_lock:
            self.runs += 1
            should_fail = self._fail_first
            self._fail_first = False
        if self.delay:
            time.sleep(self.delay)
        if should_fail:
            raise RewriteError("injected optimizer failure")
        return self._inner.run(program)

    def signature(self):
        return ("counting-test-pipeline",)


class TestDoubleOptimizeRace:
    def test_concurrent_first_flushes_optimize_exactly_once(self, program):
        pipeline = CountingPipeline(delay=0.3)
        engine = ExecutionEngine(backend="interpreter", optimize=True, pipeline=pipeline)
        results = {}
        errors = []

        def flush(name, start_delay):
            try:
                time.sleep(start_delay)
                result = engine.execute(program, MemoryManager())
                bases = [b for b in result.memory.live_bases()]
                results[name] = {
                    id(b): np.array(result.memory.allocate(b), copy=True) for b in bases
                }
            except Exception as exc:  # pragma: no cover - the bug
                errors.append(exc)

        # The first thread claims the builder role and dawdles inside the
        # pipeline; the second arrives mid-build and must wait on the
        # latch instead of building a second plan.
        first = threading.Thread(target=flush, args=("first", 0.0))
        second = threading.Thread(target=flush, args=("second", 0.1))
        first.start()
        second.start()
        first.join()
        second.join()

        assert errors == []
        assert pipeline.runs == 1, "both threads ran the optimizer (double-optimize race)"
        assert engine.plans_built == 1
        assert engine.plan_waits >= 1, "the second flush never waited on the latch"
        stats = engine.plan_cache.stats()
        assert stats["plan_cache_size"] == 1
        # The waiter replays the published plan: its flush counts as a hit.
        assert stats["plan_cache_hits"] >= 1
        # Both executions produced values (same program, fresh memory each).
        assert set(results) == {"first", "second"}
        first_values = sorted(v.tobytes() for v in results["first"].values())
        second_values = sorted(v.tobytes() for v in results["second"].values())
        assert first_values == second_values

    def test_failed_builder_does_not_wedge_the_fingerprint(self, program):
        pipeline = CountingPipeline(delay=0.2, fail_first=True)
        engine = ExecutionEngine(backend="interpreter", optimize=True, pipeline=pipeline)
        outcomes = {}

        def flush(name, start_delay):
            time.sleep(start_delay)
            try:
                engine.execute(program, MemoryManager())
                outcomes[name] = "ok"
            except RewriteError:
                outcomes[name] = "failed"

        first = threading.Thread(target=flush, args=("first", 0.0))
        second = threading.Thread(target=flush, args=("second", 0.05))
        first.start()
        second.start()
        first.join()
        second.join()

        # The builder fails and releases the latch; the waiter wakes, finds
        # no plan, claims the builder role itself and succeeds.
        assert outcomes["first"] == "failed"
        assert outcomes["second"] == "ok"
        assert pipeline.runs == 2
        assert engine.plans_built == 1
        # The fingerprint is healthy: a third flush is a plain cache hit.
        engine.execute(program, MemoryManager())
        assert engine.plans_built == 1

    def test_sequential_flushes_unaffected_by_the_latch(self, program):
        pipeline = CountingPipeline()
        engine = ExecutionEngine(backend="interpreter", optimize=True, pipeline=pipeline)
        engine.execute(program, MemoryManager())
        engine.execute(program, MemoryManager())
        engine.execute(program, MemoryManager())
        assert pipeline.runs == 1
        assert engine.plans_built == 1
        assert engine.plan_waits == 0
        assert engine.plan_cache.stats()["plan_cache_hits"] == 2

    def test_distinct_fingerprints_build_independently(self):
        pipeline = CountingPipeline(delay=0.15)
        engine = ExecutionEngine(backend="interpreter", optimize=True, pipeline=pipeline)
        small = chain_program(size=16, adds=2)
        large = chain_program(size=64, adds=5)
        errors = []

        def flush(prog):
            try:
                engine.execute(prog, MemoryManager())
            except Exception as exc:  # pragma: no cover - the bug
                errors.append(exc)

        threads = [threading.Thread(target=flush, args=(p,)) for p in (small, large)]
        for thread in threads:
            thread.start()
        for thread in threads:
            thread.join()
        assert errors == []
        # Two different fingerprints: two builds, and neither waited on the
        # other's latch (the latch is per cache key, not global).
        assert engine.plans_built == 2
        assert engine.plan_waits == 0
