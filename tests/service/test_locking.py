"""Tests for the lock-discipline primitives in ``repro.utils.locking``."""

import threading

import pytest

from repro.utils.errors import ConcurrencyError
from repro.utils.locking import ContendedLock, SingleOwner


class TestContendedLock:
    def test_uncontended_acquire_counts_no_contention(self):
        lock = ContendedLock()
        with lock:
            pass
        with lock:
            pass
        assert lock.acquisitions == 2
        assert lock.contentions == 0

    def test_reentrant(self):
        lock = ContendedLock()
        with lock:
            with lock:
                pass
        assert lock.contentions == 0

    def test_contended_acquire_is_counted(self):
        lock = ContendedLock()
        inside = threading.Event()
        release = threading.Event()

        def holder():
            with lock:
                inside.set()
                release.wait()

        thread = threading.Thread(target=holder)
        thread.start()
        inside.wait()
        # The holder owns the lock: this acquire must block, and blocking
        # is exactly what the contention counter records.
        release_timer = threading.Timer(0.05, release.set)
        release_timer.start()
        with lock:
            pass
        thread.join()
        release_timer.join()
        assert lock.contentions == 1
        assert lock.acquisitions == 2


class TestSingleOwner:
    def test_same_thread_reentry_is_allowed(self):
        guard = SingleOwner("test structure")
        with guard:
            with guard:
                pass
        # Fully released: another thread may now enter.
        with guard:
            pass
        assert guard.violations == 0

    def test_concurrent_entry_raises_naming_both_threads(self):
        guard = SingleOwner("tenant session")
        entered = threading.Event()
        release = threading.Event()
        failure = []

        def second():
            entered.wait()
            try:
                with guard:
                    pass
            except ConcurrencyError as exc:
                failure.append(str(exc))
            finally:
                release.set()

        thread = threading.Thread(target=second, name="intruder")
        thread.start()
        with guard:
            entered.set()
            release.wait()
        thread.join()
        assert len(failure) == 1
        assert "tenant session" in failure[0]
        assert "intruder" in failure[0]
        assert guard.violations == 1

    def test_ownership_clears_after_exit(self):
        guard = SingleOwner()
        with guard:
            pass
        errors = []

        def enter():
            try:
                with guard:
                    pass
            except ConcurrencyError as exc:  # pragma: no cover - the bug
                errors.append(exc)

        thread = threading.Thread(target=enter)
        thread.start()
        thread.join()
        assert errors == []

    def test_violation_does_not_poison_the_guard(self):
        guard = SingleOwner()
        entered = threading.Event()
        release = threading.Event()

        def holder():
            with guard:
                entered.set()
                release.wait()

        thread = threading.Thread(target=holder)
        thread.start()
        entered.wait()
        with pytest.raises(ConcurrencyError):
            with guard:
                pass
        release.set()
        thread.join()
        # The failed entry must not have corrupted the depth accounting.
        with guard:
            pass
