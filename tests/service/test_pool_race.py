"""Regression tests for BufferPool recycle/stats races and fairness.

Before the pool lock, concurrent sessions recycling through one shared
pool could pop the same parked buffer twice (two tenants writing through
one storage block) and lose counter increments to read-modify-write
interleavings.  These tests hammer the pool from many threads and assert
the invariants the service depends on: no double-hand-out, a byte cap
that is never exceeded, and counters that add up exactly.
"""

import threading

import numpy as np
import pytest

from repro.runtime.memory import BufferPool, TenantPoolView, size_class


class TestPoolRaces:
    def test_no_double_hand_out_under_contention(self):
        pool = BufferPool(max_bytes=1 << 20)
        held_ids = set()
        held_lock = threading.Lock()
        double_hand_outs = []
        rounds = 300
        nbytes = 4096

        def worker():
            for _ in range(rounds):
                buffer = pool.acquire(nbytes)
                with held_lock:
                    if id(buffer) in held_ids:
                        double_hand_outs.append(id(buffer))
                    held_ids.add(id(buffer))
                buffer[:8] = 0xAB  # touch it, as a real tenant would
                with held_lock:
                    held_ids.discard(id(buffer))
                pool.release(buffer)

        threads = [threading.Thread(target=worker) for _ in range(8)]
        for thread in threads:
            thread.start()
        for thread in threads:
            thread.join()

        assert double_hand_outs == [], "one parked buffer was handed to two threads"
        total = 8 * rounds
        assert pool.hits + pool.misses == total
        # Everything released at the end: held bytes are whatever parked
        # (bounded by the cap), and the cap was never exceeded even
        # transiently (peak is maintained under the same lock).
        assert pool.bytes_held <= pool.max_bytes
        assert pool.peak_bytes_held <= pool.max_bytes

    def test_byte_cap_never_exceeded_and_discards_counted(self):
        cls = size_class(4096)
        pool = BufferPool(max_bytes=4 * cls)

        def worker():
            buffers = [pool.acquire(4096) for _ in range(6)]
            for buffer in buffers:
                pool.release(buffer)

        threads = [threading.Thread(target=worker) for _ in range(6)]
        for thread in threads:
            thread.start()
        for thread in threads:
            thread.join()

        assert pool.bytes_held <= pool.max_bytes
        assert pool.peak_bytes_held <= pool.max_bytes
        # 36 releases raced for 4 parking slots: most fell through.
        assert pool.discards > 0
        parked = sum(len(bin_) for bin_ in pool._bins.values())
        assert parked * cls == pool.bytes_held

    def test_counter_consistency_across_threads(self):
        pool = BufferPool(max_bytes=1 << 22)
        rounds = 200

        def worker():
            local = []
            for index in range(rounds):
                local.append(pool.acquire(1024 * (1 + index % 3)))
                if len(local) >= 4:
                    pool.release(local.pop(0))
            for buffer in local:
                pool.release(buffer)

        threads = [threading.Thread(target=worker) for _ in range(8)]
        for thread in threads:
            thread.start()
        for thread in threads:
            thread.join()
        assert pool.hits + pool.misses == 8 * rounds
        stats = pool.stats()
        assert stats["pool_hits"] == pool.hits
        assert stats["pool_bytes_held"] == pool.bytes_held


class TestTenantFairness:
    def test_fair_policy_caps_one_tenant_parked_bytes(self):
        cls = size_class(8192)
        pool = BufferPool(max_bytes=8 * cls, fairness="fair")
        hog = TenantPoolView(pool, "hog")
        meek = TenantPoolView(pool, "meek")
        share = pool.fair_share_bytes()
        assert share == 4 * cls

        # The hog floods releases far beyond its share.
        buffers = [hog.acquire(8192) for _ in range(10)]
        for buffer in buffers:
            hog.release(buffer)
        assert pool.parked_bytes_of("hog") <= share
        assert hog.discards > 0
        # The meek tenant still has its full share of parking available.
        parked_before = pool.parked_bytes_of("meek")
        meek_buffers = [meek.acquire(8192) for _ in range(4)]
        for buffer in meek_buffers:
            meek.release(buffer)
        assert pool.parked_bytes_of("meek") >= parked_before

    def test_shared_policy_has_no_per_tenant_cap(self):
        cls = size_class(8192)
        pool = BufferPool(max_bytes=8 * cls, fairness="shared")
        hog = TenantPoolView(pool, "hog")
        TenantPoolView(pool, "other")
        buffers = [hog.acquire(8192) for _ in range(8)]
        for buffer in buffers:
            hog.release(buffer)
        # Under "shared", first-come-first-parked up to the global cap.
        assert pool.parked_bytes_of("hog") == 8 * cls

    def test_any_tenant_may_reuse_any_parked_buffer(self):
        pool = BufferPool(max_bytes=1 << 20)
        a = TenantPoolView(pool, "a")
        b = TenantPoolView(pool, "b")
        buffer = a.acquire(2048)
        marker = np.arange(16, dtype=np.uint8)
        buffer[:16] = marker
        a.release(buffer)
        recycled = b.acquire(2048)
        assert recycled is buffer, "the shared pool should recycle across tenants"
        assert b.hits == 1
        assert a.hits == 0, "tenant counters must stay tenant-local"
        # Owner accounting moved with the buffer.
        assert pool.parked_bytes_of("a") == 0

    def test_view_counters_are_tenant_local(self):
        pool = BufferPool(max_bytes=1 << 20)
        a = TenantPoolView(pool, "a")
        b = TenantPoolView(pool, "b")
        a.acquire(512)
        a.acquire(512)
        assert a.misses == 2
        assert b.misses == 0
        assert b.stats()["pool_misses"] == 0
        assert pool.misses == 2

    def test_unknown_fairness_policy_rejected(self):
        with pytest.raises(ValueError):
            BufferPool(max_bytes=1024, fairness="roulette")
