"""Tests for the multi-tenant array service: sessions, admission, isolation."""

import threading
import time

import numpy as np
import pytest

from repro.runtime.interpreter import NumPyInterpreter
from repro.service import (
    AdmissionController,
    ArrayService,
    clone_program_with_fresh_bases,
)
from repro.utils.config import config_override
from repro.utils.errors import (
    ConcurrencyError,
    ExecutionError,
    ServiceOverloadError,
)

from tests.service.conftest import chain_program


class SlowInterpreter(NumPyInterpreter):
    """An interpreter that dawdles, so tests can hold an in-flight slot."""

    name = "slow-interpreter"

    def __init__(self, delay=0.3):
        super().__init__()
        self.delay = delay

    def execute(self, program, memory=None):
        time.sleep(self.delay)
        return super().execute(program, memory)


class TestAdmissionController:
    def test_tenant_cap_rejects_immediately(self):
        admission = AdmissionController(
            max_inflight=8, tenant_max_inflight=2, timeout_seconds=5.0
        )
        admission.admit("t")
        admission.admit("t")
        started = time.monotonic()
        with pytest.raises(ServiceOverloadError):
            admission.admit("t")
        # Per-tenant cap violations reject without consuming the timeout.
        assert time.monotonic() - started < 1.0
        assert admission.rejected_tenant_cap == 1
        # Another tenant is unaffected.
        admission.admit("u")
        for tenant in ("t", "t", "u"):
            admission.release(tenant)
        # Slots fully returned: the tenant may flush again.
        admission.admit("t")
        admission.release("t")

    def test_global_cap_times_out_with_clean_rejection(self):
        admission = AdmissionController(
            max_inflight=1, tenant_max_inflight=4, timeout_seconds=0.1
        )
        admission.admit("holder")
        with pytest.raises(ServiceOverloadError):
            admission.admit("waiter")
        assert admission.rejected_timeout == 1
        stats = admission.stats()
        assert stats["inflight"] == 1
        admission.release("holder")
        # The rejected waiter left no residue: it can be admitted now.
        admission.admit("waiter")
        admission.release("waiter")
        assert admission.stats()["inflight"] == 0

    def test_backpressure_wait_until_slot_frees(self):
        admission = AdmissionController(
            max_inflight=1, tenant_max_inflight=4, timeout_seconds=10.0
        )
        admission.admit("holder")
        admitted = threading.Event()

        def waiter():
            admission.admit("waiter")
            admitted.set()
            admission.release("waiter")

        thread = threading.Thread(target=waiter)
        thread.start()
        time.sleep(0.05)
        assert not admitted.is_set(), "the waiter should be blocked on backpressure"
        admission.release("holder")
        thread.join()
        assert admitted.is_set()
        stats = admission.stats()
        assert stats["waits"] == 1
        assert stats["admitted"] == 2
        assert stats["peak_inflight"] == 1

    def test_invalid_caps_rejected(self):
        with pytest.raises(ValueError):
            AdmissionController(max_inflight=0)
        with pytest.raises(ValueError):
            AdmissionController(tenant_max_inflight=0)


class TestServiceSessions:
    def test_sessions_share_engine_and_pool_but_not_memory(self, program):
        with ArrayService(backend="interpreter") as service:
            a = service.open_session("alice")
            b = service.open_session("bob")
            assert a.engine is b.engine is service.engine
            assert a.memory is not b.memory
            assert a.memory.pool.shared is service.pool
            assert b.memory.pool.shared is service.pool

            clone_a, bases_a = clone_program_with_fresh_bases(program)
            clone_b, bases_b = clone_program_with_fresh_bases(program)
            a.execute(clone_a)
            b.execute(clone_b)
            # Cross-session reuse: bob's flush hit the plan alice built.
            assert service.engine.plans_built == 1
            assert service.engine.plan_cache.stats()["plan_cache_hits"] >= 1
            # Isolation: each session sees exactly its own live bases.
            live_a = {id(base) for base in a.memory.live_bases()}
            live_b = {id(base) for base in b.memory.live_bases()}
            assert live_a.isdisjoint(live_b)

    def test_identical_results_across_tenants(self, program):
        with ArrayService(backend="interpreter") as service:
            a = service.open_session()
            b = service.open_session()
            clone_a, bases_a = clone_program_with_fresh_bases(program)
            clone_b, bases_b = clone_program_with_fresh_bases(program)
            result_a = a.execute(clone_a)
            result_b = b.execute(clone_b)
            values_a = [
                np.array(result_a.memory.allocate(base), copy=True)
                for base in bases_a
                if result_a.memory.is_allocated(base)
            ]
            values_b = [
                np.array(result_b.memory.allocate(base), copy=True)
                for base in bases_b
                if result_b.memory.is_allocated(base)
            ]
            assert len(values_a) == len(values_b) > 0
            for left, right in zip(values_a, values_b):
                np.testing.assert_array_equal(left, right)

    def test_flush_records_through_frontend_session_protocol(self, program):
        with ArrayService(backend="interpreter") as service:
            session = service.open_session()
            clone, bases = clone_program_with_fresh_bases(program)
            for instruction in clone:
                session.record(instruction)
            result = session.flush()
            assert result is not None
            assert session.flush_count == 1
            assert session.pending_size() == 0
            assert any(result.memory.is_allocated(base) for base in bases)
            # An empty flush is a no-op and does not consume admission.
            assert session.flush() is None
            assert service.admission.stats()["admitted"] == 1

    def test_rejected_flush_keeps_pending_program(self, program):
        backend = SlowInterpreter(delay=0.4)
        with ArrayService(
            backend=backend, max_inflight=1, admission_timeout=0.05
        ) as service:
            holder = service.open_session("holder")
            victim = service.open_session("victim")
            clone_h, _ = clone_program_with_fresh_bases(program)
            clone_v, _ = clone_program_with_fresh_bases(program)
            for instruction in clone_v:
                victim.record(instruction)
            pending_before = victim.pending_size()

            hold_done = threading.Thread(
                target=lambda: holder.execute(clone_h)
            )
            hold_done.start()
            time.sleep(0.1)  # the holder is now inside its slow execute
            with pytest.raises(ServiceOverloadError):
                victim.flush()
            # Clean rejection: nothing executed, nothing consumed.
            assert victim.pending_size() == pending_before
            assert victim.flush_count == 0
            hold_done.join()
            # The slot freed: the very same flush now succeeds.
            assert victim.flush() is not None
            assert victim.flush_count == 1

    def test_session_close_releases_arrays_to_shared_pool(self, program):
        with ArrayService(backend="interpreter") as service:
            session = service.open_session("t")
            clone, bases = clone_program_with_fresh_bases(program)
            session.execute(clone)
            assert len(tuple(session.memory.live_bases())) > 0
            service.close_session(session)
            assert session.closed
            assert tuple(session.memory.live_bases()) == ()
            # Its buffers parked in the shared pool for other tenants.
            assert service.pool.bytes_held > 0
            with pytest.raises(ExecutionError):
                session.flush()
            with pytest.raises(ExecutionError):
                session.execute(clone)
            # Closing twice is a no-op.
            session.close()

    def test_duplicate_tenant_rejected(self):
        with ArrayService(backend="interpreter") as service:
            service.open_session("t")
            with pytest.raises(ValueError):
                service.open_session("t")

    def test_two_threads_driving_one_session_is_diagnosed(self, program):
        backend = SlowInterpreter(delay=0.3)
        with ArrayService(backend=backend) as service:
            session = service.open_session()
            clone_a, _ = clone_program_with_fresh_bases(program)
            clone_b, _ = clone_program_with_fresh_bases(program)
            started = threading.Event()
            errors = []

            def first():
                started.set()
                session.execute(clone_a)

            thread = threading.Thread(target=first)
            thread.start()
            started.wait()
            time.sleep(0.05)
            with pytest.raises(ConcurrencyError):
                session.execute(clone_b)
            thread.join()
            assert errors == []

    def test_service_stats_and_total_stats_aggregate_across_tenants(self, program):
        with ArrayService(backend="interpreter") as service:
            a = service.open_session()
            b = service.open_session()
            for session in (a, b):
                clone, _ = clone_program_with_fresh_bases(program)
                session.execute(clone)
            service.close_session(a)  # retired stats must still count
            total = service.total_stats()
            assert total.plan_cache_hits + total.plan_cache_misses == 2
            stats = service.stats()
            assert stats["sessions_open"] == 1
            assert stats["sessions_opened"] == 2
            assert stats["admission"]["admitted"] == 2
            assert stats["cache"]["plan_builds"] == 1

    def test_closed_service_rejects_new_sessions(self):
        service = ArrayService(backend="interpreter")
        service.close()
        with pytest.raises(ExecutionError):
            service.open_session()

    def test_service_config_knobs_are_honoured(self):
        with config_override(
            service_max_inflight=3,
            service_tenant_max_inflight=2,
            service_pool_max_bytes=1 << 16,
            service_fairness="fair",
        ):
            with ArrayService(backend="interpreter") as service:
                assert service.admission.max_inflight == 3
                assert service.admission.tenant_max_inflight == 2
                assert service.pool.max_bytes == 1 << 16
                assert service.pool.fairness == "fair"
