"""The N-threads × M-sessions stress suite (the issue's acceptance gate).

Drives one shared service hard enough that every shared structure — plan
cache, in-flight latch, buffer pool, admission controller, codegen memo —
is contended, then asserts the invariants that make multi-tenancy safe:

* every tenant's result is **bitwise identical** to a serial single-tenant
  reference,
* each distinct program fingerprint was optimized **exactly once**
  service-wide (and at least one flush was a cross-session cache hit),
* the shared pool's byte cap was never exceeded,
* admission accounting balances to zero in-flight at the end, and
  saturation produced clean rejections, never corruption.
"""

import pytest

from repro.service import ArrayService, run_service_stress
from repro.utils.config import config_override

from tests.service.conftest import chain_program


class TestServiceStress:
    def test_eight_threads_thirty_two_sessions_bitwise_identical(self, program):
        report = run_service_stress(
            program, threads=8, sessions=32, repeats=2, backend="interpreter"
        )
        assert report["errors"] == []
        assert report["mismatches"] == 0, "a tenant observed non-serial results"
        assert report["ok"]
        assert report["executed"] == 64
        # Exactly-once optimization: one fingerprint, one build, and every
        # other flush replayed it — cross-session plan-cache hits.
        assert report["plan_builds"] == 1
        assert report["plan_cache_hits"] >= 1
        assert report["plan_cache_hits"] + report["stats"]["cache"][
            "plan_waits"
        ] >= 63
        # The pool cap held at every instant (peak maintained under lock).
        assert report["pool_peak_bytes_held"] <= report["pool_max_bytes"]
        admission = report["stats"]["admission"]
        assert admission["inflight"] == 0
        assert admission["peak_inflight"] <= admission["max_inflight"]
        assert admission["admitted"] == 64

    def test_stress_on_the_fusing_jit_backend(self, program):
        report = run_service_stress(
            program, threads=4, sessions=8, repeats=2, backend="jit"
        )
        assert report["errors"] == []
        assert report["mismatches"] == 0
        assert report["plan_builds"] == 1
        # The shared backend's kernel cache deduped across tenants too.
        cache = report["stats"]["cache"]
        assert cache["kernel_cache_misses"] <= cache["kernel_cache_hits"]

    def test_stress_on_the_native_backend(self, program):
        # Without a C compiler the native backend degrades to interpreted
        # templates — still a valid concurrency stress, just no compiles.
        report = run_service_stress(
            program, threads=4, sessions=8, repeats=2, backend="native"
        )
        assert report["errors"] == []
        assert report["mismatches"] == 0
        assert report["plan_builds"] == 1
        # The shared engine surfaces the native tier's counters, so the
        # service path's codegen behaviour is observable from the report.
        cache = report["stats"]["cache"]
        for key in (
            "native_mt_launches",
            "native_reductions_compiled",
            "native_reduction_fallbacks",
            "native_slots_elided",
        ):
            assert key in cache, key

    def test_two_fingerprints_each_optimized_exactly_once(self):
        small = chain_program(size=16, adds=2)
        large = chain_program(size=64, adds=5)
        with ArrayService(backend="interpreter") as service:
            first = run_service_stress(
                small, threads=4, sessions=8, repeats=2, service=service
            )
            second = run_service_stress(
                large, threads=4, sessions=8, repeats=2, service=service
            )
            assert first["errors"] == second["errors"] == []
            assert first["mismatches"] == second["mismatches"] == 0
            assert first["plan_builds"] == 1
            # The same service compiled exactly one more plan for the new
            # fingerprint; the first one stayed cached and untouched.
            assert second["plan_builds"] == 2

    def test_tiny_pool_cap_is_never_exceeded_under_churn(self, program):
        with ArrayService(
            backend="interpreter", pool_max_bytes=2048, fairness="fair"
        ) as service:
            report = run_service_stress(
                program, threads=8, sessions=16, repeats=2, service=service
            )
            assert report["errors"] == []
            assert report["mismatches"] == 0
            pool = report["stats"]["pool"]
            assert pool["pool_peak_bytes_held"] <= 2048
            # A 2 KiB cap under 32 flushes of multi-buffer programs must
            # have forced discards — proof the cap actually bit.
            assert pool["pool_discards"] > 0

    def test_saturated_admission_rejects_cleanly_and_recovers(self, program):
        # One in-flight slot, an immediate timeout and one flush per tenant
        # queued behind it: some flushes are rejected, none corrupt state,
        # and every executed flush is still bitwise correct.
        with ArrayService(
            backend="interpreter",
            max_inflight=1,
            tenant_max_inflight=1,
            admission_timeout=0.0,
        ) as service:
            report = run_service_stress(
                program, threads=8, sessions=16, repeats=3, service=service
            )
            assert report["errors"] == []
            assert report["mismatches"] == 0
            admission = report["stats"]["admission"]
            assert admission["inflight"] == 0
            assert (
                admission["admitted"]
                == report["flushes"] - report["rejections"]
            )
            assert report["executed"] + report["rejections"] == report["flushes"]

    def test_plan_cache_contention_is_observable(self, program):
        report = run_service_stress(
            program, threads=8, sessions=32, repeats=2, backend="interpreter"
        )
        cache = report["stats"]["cache"]
        # The counters exist and are coherent; actual contention depends on
        # scheduling, so only the accounting identity is asserted.
        assert cache["plan_cache_contentions"] >= 0
        assert (
            cache["plan_cache_hits"] + cache["plan_cache_misses"]
            >= report["executed"]
        )

    def test_stress_respects_config_backend_default(self, program):
        with config_override(default_backend="jit"):
            report = run_service_stress(
                program, threads=2, sessions=4, repeats=2
            )
            assert report["backend"] == "jit"
            assert report["ok"]
