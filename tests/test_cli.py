"""Tests for the ``repro-opt`` command-line tool."""

import io

import pytest

from repro.tools.cli import build_parser, main, run

LISTING_2 = """\
BH_IDENTITY a0[0:10:1] 0
BH_ADD a0[0:10:1] a0[0:10:1] 1
BH_ADD a0[0:10:1] a0[0:10:1] 1
BH_ADD a0[0:10:1] a0[0:10:1] 1
BH_SYNC a0[0:10:1]
"""

POWER_LISTING = """\
BH_RANGE a0[0:64:1]
BH_POWER a1[0:64:1] a0[0:64:1] 10
BH_SYNC a1[0:64:1]
"""

#: An element-wise chain with a reduction interleaved mid-chain: the
#: dependency-graph fusion scheduler reorders the reduction past the chain
#: and fuses the whole chain into one kernel.
INTERLEAVED_LISTING = """\
BH_IDENTITY a0[0:32:1] 1
BH_ADD_REDUCE a1[0:1:1] a0[0:32:1] 0
BH_ADD a2[0:32:1] a0[0:32:1] 2
BH_MULTIPLY a2[0:32:1] a2[0:32:1] 3
BH_SYNC a1[0:1:1]
BH_SYNC a2[0:32:1]
"""


@pytest.fixture
def interleaved_file(tmp_path):
    path = tmp_path / "interleaved.bh"
    path.write_text(INTERLEAVED_LISTING)
    return str(path)


@pytest.fixture
def listing_file(tmp_path):
    path = tmp_path / "listing2.bh"
    path.write_text(LISTING_2)
    return str(path)


#: Same shape as Listing 2, but large enough to clear the parallel
#: backend's serial threshold so tiled (and native-compiled) paths run.
LARGE_LISTING = LISTING_2.replace("[0:10:1]", "[0:16384:1]")


@pytest.fixture
def large_listing_file(tmp_path):
    path = tmp_path / "large_listing.bh"
    path.write_text(LARGE_LISTING)
    return str(path)


def run_cli(args_list):
    """Run the tool with a string-capturing stdout; returns (exit code, output)."""
    parser = build_parser()
    args = parser.parse_args(args_list)
    out = io.StringIO()
    code = run(args, out=out)
    return code, out.getvalue()


class TestBasicOperation:
    def test_optimizes_listing_2(self, listing_file):
        code, output = run_cli([listing_file])
        assert code == 0
        assert "BH_ADD" in output
        assert " 3" in output                      # the merged constant
        assert "constant_merge" in output          # the report mentions the pass
        assert "cost model" in output

    def test_quiet_mode_prints_only_the_listing(self, listing_file):
        code, output = run_cli([listing_file, "--quiet"])
        assert code == 0
        assert "optimization summary" not in output
        assert "cost model" not in output
        assert output.strip().startswith("BH_")

    def test_verify_flag(self, listing_file):
        code, output = run_cli([listing_file, "--verify"])
        assert code == 0
        assert "semantic verification: passed" in output

    def test_check_flag_runs_clean(self, listing_file):
        code, output = run_cli([listing_file, "--check", "--backend", "parallel"])
        assert code == 0
        assert "BH_" in output

    def test_stdin_input(self, monkeypatch):
        monkeypatch.setattr("sys.stdin", io.StringIO(LISTING_2))
        code, output = run_cli(["-"])
        assert code == 0
        assert "BH_ADD" in output

    def test_pass_subset(self, listing_file):
        code, output = run_cli([listing_file, "--passes", "constant_merge", "--quiet"])
        assert code == 0
        # fusion did not run, so no BH_FUSED wrapper appears
        assert "BH_FUSED" not in output
        assert output.count("BH_ADD") == 1

    def test_power_strategy_option(self, tmp_path):
        path = tmp_path / "power.bh"
        path.write_text(POWER_LISTING)
        code_naive, out_naive = run_cli([str(path), "--power-strategy", "naive", "--quiet"])
        code_paper, out_paper = run_cli([str(path), "--power-strategy", "power_of_two", "--quiet"])
        assert code_naive == 0 and code_paper == 0
        assert out_naive.count("BH_MULTIPLY") == 9
        assert out_paper.count("BH_MULTIPLY") == 5

    def test_extended_pipeline_flag(self, listing_file):
        code, output = run_cli([listing_file, "--extended", "--quiet"])
        assert code == 0
        # constant folding collapses everything into one initialisation
        assert "BH_ADD" not in output

    def test_list_passes(self):
        code, output = run_cli(["--list-passes"])
        assert code == 0
        assert "constant_merge" in output
        assert "pipeline order" in output

    def test_fusion_scheduler_stats_reported(self, interleaved_file):
        code, output = run_cli([interleaved_file])
        assert code == 0
        assert "fusion scheduler (dag):" in output
        assert "byte-code(s) reordered" in output
        assert "predicted streaming savings" in output

    def test_fusion_scheduler_stats_follow_the_config(self, interleaved_file):
        from repro.utils.config import config_override

        with config_override(fusion_scheduler="consecutive"):
            code, output = run_cli([interleaved_file])
        assert code == 0
        assert "fusion scheduler (consecutive):" in output
        assert "0 byte-code(s) reordered" in output

    def test_profile_option(self, listing_file):
        code, output = run_cli([listing_file, "--profile", "multicore"])
        assert code == 0
        assert "multicore profile" in output


class TestBackendExecution:
    def test_backend_flag_executes_and_reports_stats(self, listing_file):
        code, output = run_cli([listing_file, "--backend", "interpreter"])
        assert code == 0
        assert "execution (interpreter backend, 1 run(s))" in output
        # The report phase primes the plan cache, so even the first
        # execution replays instead of re-optimizing.
        assert "plan cache: 1 hit(s), 0 miss(es), 1 plan(s) cached" in output

    def test_repeat_hits_the_plan_cache(self, listing_file):
        code, output = run_cli([listing_file, "--backend", "interpreter", "--repeat", "5"])
        assert code == 0
        assert "plan cache: 5 hit(s), 0 miss(es), 1 plan(s) cached" in output

    def test_jit_backend_reports_kernel_cache(self, listing_file):
        code, output = run_cli([listing_file, "--backend", "jit", "--repeat", "2"])
        assert code == 0
        assert "kernel cache:" in output

    def test_no_backend_no_execution_section(self, listing_file):
        code, output = run_cli([listing_file])
        assert code == 0
        assert "execution (" not in output

    def test_unknown_backend_is_an_error(self, listing_file):
        assert main([listing_file, "--backend", "tpu"]) == 1

    def test_invalid_repeat_is_an_error(self, listing_file):
        assert main([listing_file, "--backend", "interpreter", "--repeat", "0"]) == 1

    def test_memory_stats_reported(self, listing_file):
        code, output = run_cli([listing_file, "--backend", "interpreter"])
        assert code == 0
        assert "memory:" in output
        assert "pool hit(s)" in output
        assert "memory plan:" in output

    def test_native_backend_reports_codegen_counters(self, large_listing_file, tmp_path):
        from repro.codegen import clear_memory_cache
        from repro.utils.config import config_override

        clear_memory_cache()
        with config_override(codegen_cache_dir=str(tmp_path / "cache")):
            code, output = run_cli(
                [large_listing_file, "--backend", "native", "--repeat", "2"]
            )
        assert code == 0
        assert "native codegen:" in output
        assert "compile(s)" in output
        assert "fallback(s)" in output

    def test_native_backend_executes_compiled_kernels(self, large_listing_file, tmp_path):
        import re

        from repro.codegen import clear_memory_cache, find_c_compiler
        from repro.utils.config import config_override

        if find_c_compiler() is None:
            pytest.skip("no C compiler on this host")
        clear_memory_cache()
        with config_override(codegen_cache_dir=str(tmp_path / "cache")):
            code, output = run_cli([large_listing_file, "--backend", "native"])
        assert code == 0
        match = re.search(r"(\d+) native launch\(es\)", output)
        assert match and int(match.group(1)) > 0


class TestStatsJson:
    def test_emits_parseable_document(self, listing_file):
        import json

        code, output = run_cli([listing_file, "--stats-json"])
        assert code == 0
        payload = json.loads(output)
        assert payload["optimization"]["instructions_before"] == 5
        assert payload["optimization"]["rewrites"] >= 1
        assert payload["cost_model"]["profile"] == "gpu"
        assert "execution" not in payload

    def test_execution_trajectory_with_backend(self, listing_file):
        import json

        code, output = run_cli(
            [listing_file, "--stats-json", "--backend", "interpreter", "--repeat", "3"]
        )
        assert code == 0
        payload = json.loads(output)
        execution = payload["execution"]
        assert execution["backend"] == "interpreter"
        assert execution["runs"] == 3
        assert len(execution["per_run"]) == 3
        for run_stats in execution["per_run"]:
            assert run_stats["plan_cache_hits"] == 1  # primed cache replays
            assert "pool_hits" in run_stats
            assert "actual_peak_bytes" in run_stats
        assert execution["cache"]["plan_cache_hits"] == 3
        assert "memory_plan" in execution

    def test_verify_result_included(self, listing_file):
        import json

        code, output = run_cli([listing_file, "--stats-json", "--verify"])
        assert code == 0
        assert json.loads(output)["verified"] is True

    def test_check_flag_emits_checks_block(self, listing_file):
        import json

        code, output = run_cli(
            [listing_file, "--stats-json", "--check", "--backend", "parallel"]
        )
        assert code == 0
        checks = json.loads(output)["checks"]
        assert checks["ir_checks_run"] > 0
        assert checks["plan_checks_run"] > 0
        assert checks["ir_check_failures"] == 0
        assert checks["plan_check_failures"] == 0

    def test_no_checks_block_without_the_flag(self, listing_file):
        import json

        code, output = run_cli([listing_file, "--stats-json"])
        assert code == 0
        assert "checks" not in json.loads(output)

    def test_native_counters_in_stats_json(self, large_listing_file, tmp_path):
        import json

        from repro.codegen import clear_memory_cache
        from repro.utils.config import config_override

        clear_memory_cache()
        with config_override(codegen_cache_dir=str(tmp_path / "cache")):
            code, output = run_cli(
                [large_listing_file, "--stats-json", "--backend", "native", "--repeat", "2"]
            )
        assert code == 0
        payload = json.loads(output)
        execution = payload["execution"]
        for key in ("native_compiles", "native_disk_hits", "native_kernel_launches"):
            assert key in execution["cache"], key
        for run_stats in execution["per_run"]:
            assert "native_kernel_launches" in run_stats
            assert "native_fallbacks" in run_stats

    def test_codegen_block_with_native_backend(self, large_listing_file, tmp_path):
        import json

        from repro.codegen import clear_memory_cache
        from repro.utils.config import config_override

        clear_memory_cache()
        with config_override(codegen_cache_dir=str(tmp_path / "cache")):
            code, output = run_cli(
                [large_listing_file, "--stats-json", "--backend", "native", "--repeat", "2"]
            )
        assert code == 0
        codegen = json.loads(output)["execution"]["codegen"]
        for key in (
            "mt_launches",
            "reductions_compiled",
            "reduction_fallbacks",
            "slots_elided",
            "compiles",
            "kernel_launches",
            "fallbacks",
        ):
            assert key in codegen, key

    def test_codegen_block_reports_compiled_reduction(self, interleaved_file, tmp_path):
        import json

        from repro.codegen import clear_memory_cache, find_c_compiler
        from repro.utils.config import config_override

        if find_c_compiler() is None:
            pytest.skip("no C compiler on this host")
        clear_memory_cache()
        with config_override(
            codegen_cache_dir=str(tmp_path / "cache"),
            parallel_tile_elements=16,
            parallel_serial_threshold=4,
        ):
            code, output = run_cli(
                [interleaved_file, "--stats-json", "--backend", "native"]
            )
        assert code == 0
        codegen = json.loads(output)["execution"]["codegen"]
        assert codegen["reductions_compiled"] >= 1
        assert codegen["reduction_fallbacks"] == 0

    def test_codegen_block_absent_without_native_counters(self, listing_file):
        import json

        code, output = run_cli(
            [listing_file, "--stats-json", "--backend", "interpreter"]
        )
        assert code == 0
        assert "codegen" not in json.loads(output)["execution"]

    def test_fusion_scheduler_section(self, interleaved_file):
        import json

        code, output = run_cli(
            [interleaved_file, "--stats-json", "--backend", "jit", "--repeat", "2"]
        )
        assert code == 0
        payload = json.loads(output)
        optimization = payload["optimization"]["fusion_scheduler"]
        assert optimization["fusion_scheduler"] == "dag"
        assert optimization["fusion_kernels_after"] < optimization["fusion_kernels_before"]
        assert optimization["fusion_bytecodes_reordered"] >= 1
        assert optimization["fusion_predicted_savings_seconds"] > 0
        execution = payload["execution"]["fusion_scheduler"]
        assert execution["fusion_scheduler"] == "dag"
        assert execution["fusion_kernels_after"] < execution["fusion_kernels_before"]


class TestServeStress:
    def test_serve_stress_reports_native_counters(self, large_listing_file, tmp_path):
        from repro.codegen import clear_memory_cache
        from repro.utils.config import config_override

        clear_memory_cache()
        with config_override(codegen_cache_dir=str(tmp_path / "cache")):
            code, output = run_cli(
                [large_listing_file, "--serve-stress", "2x2x1", "--backend", "native"]
            )
        assert code == 0
        assert "native:" in output
        assert "in-kernel mt launch(es)" in output
        assert "compiled reduction(s)" in output

    def test_serve_stress_json_includes_native_counters(
        self, large_listing_file, tmp_path
    ):
        import json

        from repro.codegen import clear_memory_cache
        from repro.utils.config import config_override

        clear_memory_cache()
        with config_override(codegen_cache_dir=str(tmp_path / "cache")):
            code, output = run_cli(
                [
                    large_listing_file,
                    "--stats-json",
                    "--serve-stress",
                    "2x2x1",
                    "--backend",
                    "native",
                ]
            )
        assert code == 0
        cache = json.loads(output)["service"]["stats"]["cache"]
        assert "native_mt_launches" in cache
        assert "native_reduction_fallbacks" in cache

    def test_serve_stress_without_native_backend_omits_the_line(self, listing_file):
        code, output = run_cli(
            [listing_file, "--serve-stress", "2x2x1", "--backend", "interpreter"]
        )
        assert code == 0
        assert "in-kernel mt launch(es)" not in output


class TestErrorHandling:
    def test_missing_file(self):
        assert main(["/nonexistent/path.bh"]) == 1

    def test_unknown_pass(self, listing_file):
        assert main([listing_file, "--passes", "turbo"]) == 1

    def test_parse_error(self, tmp_path):
        path = tmp_path / "bad.bh"
        path.write_text("BH_NOT_A_THING a0[0:4:1] 1\n")
        assert main([str(path)]) == 1

    def test_main_happy_path(self, listing_file, capsys):
        assert main([listing_file, "--quiet"]) == 0
        assert "BH_" in capsys.readouterr().out
