"""Tests for the public API surface of the top-level package.

An open-source release lives or dies by its import surface staying stable;
these tests pin the names documented in the README and verify that every
``__all__`` entry actually resolves.
"""

import importlib

import pytest

import repro


class TestTopLevelExports:
    def test_version_string(self):
        assert isinstance(repro.__version__, str)
        assert repro.__version__.count(".") >= 1

    def test_all_entries_resolve(self):
        for name in repro.__all__:
            assert hasattr(repro, name), f"repro.__all__ lists missing attribute {name!r}"

    @pytest.mark.parametrize(
        "name",
        [
            "ProgramBuilder",
            "Program",
            "Instruction",
            "OpCode",
            "View",
            "BaseArray",
            "Constant",
            "optimize",
            "default_pipeline",
            "CostModel",
            "NumPyInterpreter",
            "FusingJIT",
            "SimulatedAccelerator",
            "MemoryManager",
            "format_program",
            "parse_program",
            "validate_program",
            "get_backend",
            "Config",
            "get_config",
        ],
    )
    def test_documented_names_exist(self, name):
        assert hasattr(repro, name)

    def test_subpackages_importable(self):
        for module in (
            "repro.bytecode",
            "repro.core",
            "repro.runtime",
            "repro.linalg",
            "repro.frontend",
            "repro.cluster",
            "repro.workloads",
            "repro.utils",
            "repro.tools",
        ):
            assert importlib.import_module(module) is not None

    def test_subpackage_all_entries_resolve(self):
        for module_name in (
            "repro.bytecode",
            "repro.core",
            "repro.runtime",
            "repro.linalg",
            "repro.frontend",
            "repro.cluster",
            "repro.workloads",
            "repro.utils",
        ):
            module = importlib.import_module(module_name)
            for name in getattr(module, "__all__", ()):
                assert hasattr(module, name), f"{module_name}.__all__ lists missing {name!r}"


class TestReadmeQuickstartSnippets:
    def test_frontend_quickstart(self):
        from repro import frontend as np
        from repro.frontend import reset_session

        reset_session()
        a = np.zeros(10)
        a += 1
        a += 1
        a += 1
        assert list(a.to_numpy()) == [3.0] * 10

    def test_bytecode_quickstart(self):
        from repro import NumPyInterpreter, ProgramBuilder, format_program, optimize

        builder = ProgramBuilder()
        a0 = builder.new_vector(10)
        builder.identity(a0, 0)
        builder.add(a0, a0, 1)
        builder.add(a0, a0, 1)
        builder.add(a0, a0, 1)
        builder.sync(a0)
        program = builder.build()
        report = optimize(program)
        assert "BH_ADD" in format_program(report.optimized)
        result = NumPyInterpreter().execute(report.optimized)
        assert list(result.value(a0)) == [3.0] * 10

    def test_public_docstrings_exist(self):
        # every public module and top-level class carries a docstring
        import repro.core as core
        import repro.runtime as runtime

        for obj in (repro, core, runtime, repro.ProgramBuilder, repro.Program, repro.CostModel):
            assert obj.__doc__ and obj.__doc__.strip()
