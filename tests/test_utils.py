"""Tests for configuration, timing helpers and the error hierarchy."""

import time

import pytest

from repro.utils import (
    Config,
    ExecutionError,
    ReproError,
    RewriteError,
    StopWatch,
    Timer,
    ValidationError,
    config_override,
    get_config,
    set_config,
)
from repro.utils.errors import ParseError


class TestConfig:
    def test_defaults(self):
        config = Config()
        assert config.default_backend == "interpreter"
        assert config.optimize is True
        assert config.verify_rewrites is False
        assert config.power_expansion_limit == 64

    def test_global_get_set(self):
        custom = Config(default_backend="jit")
        set_config(custom)
        assert get_config().default_backend == "jit"

    def test_set_config_type_checked(self):
        with pytest.raises(TypeError):
            set_config({"default_backend": "jit"})

    def test_replace_returns_new_object(self):
        config = Config()
        changed = config.replace(optimize=False)
        assert changed is not config
        assert changed.optimize is False
        assert config.optimize is True

    def test_copy_is_deep(self):
        config = Config(enabled_passes=["dce"])
        copied = config.copy()
        copied.enabled_passes.append("fusion")
        assert config.enabled_passes == ["dce"]

    def test_config_override_restores_previous(self):
        baseline = get_config()
        with config_override(optimize=False, power_expansion_limit=4) as overridden:
            assert get_config() is overridden
            assert get_config().optimize is False
            assert get_config().power_expansion_limit == 4
        assert get_config().optimize is baseline.optimize

    def test_config_override_restores_on_exception(self):
        with pytest.raises(RuntimeError):
            with config_override(optimize=False):
                raise RuntimeError("boom")
        assert get_config().optimize is True


class TestTimers:
    def test_timer_measures_elapsed_time(self):
        with Timer() as timer:
            time.sleep(0.01)
        assert timer.elapsed >= 0.01

    def test_timer_without_run_is_zero(self):
        assert Timer().elapsed == 0.0

    def test_stopwatch_accumulates_segments(self):
        watch = StopWatch()
        watch.start("phase")
        time.sleep(0.005)
        first = watch.stop("phase")
        watch.add("phase", 0.1)
        assert watch.segments["phase"] == pytest.approx(first + 0.1)
        assert watch.counts["phase"] == 2
        assert watch.total() == pytest.approx(watch.segments["phase"])

    def test_stopwatch_stop_without_start(self):
        assert StopWatch().stop("missing") == 0.0

    def test_stopwatch_merge(self):
        first, second = StopWatch(), StopWatch()
        first.add("a", 1.0)
        second.add("a", 2.0)
        second.add("b", 3.0)
        first.merge(second)
        assert first.segments == {"a": 3.0, "b": 3.0}


class TestErrorHierarchy:
    @pytest.mark.parametrize(
        "error_type", [ValidationError, ExecutionError, RewriteError, ParseError]
    )
    def test_all_errors_derive_from_repro_error(self, error_type):
        assert issubclass(error_type, ReproError)

    def test_errors_are_catchable_as_base(self):
        with pytest.raises(ReproError):
            raise ValidationError("bad program")
