"""Tests for the workload generators used by examples and benchmarks."""

import numpy as np
import pytest

from repro import frontend as bh
from repro.bytecode.opcodes import OpCode
from repro.bytecode.validate import validate_program
from repro.core.pipeline import optimize
from repro.frontend.session import reset_session
from repro.runtime.interpreter import NumPyInterpreter
from repro.workloads import (
    black_scholes,
    elementwise_chain,
    gaussian_blur,
    heat_equation,
    linear_solve_program,
    monte_carlo_pi,
    polynomial_evaluation,
    power_program,
    random_elementwise_program,
    repeated_constant_add,
    repeated_scaling,
)


class TestMicrobenchWorkloads:
    def test_repeated_constant_add_structure(self):
        program, out = repeated_constant_add(100, repeats=5, constant=2)
        validate_program(program)
        assert program.count(OpCode.BH_ADD) == 5
        result = NumPyInterpreter().execute(program)
        assert np.all(result.value(out) == 10)

    def test_repeated_scaling_structure(self):
        program, out = repeated_scaling(50, repeats=3, factor=2.0)
        validate_program(program)
        result = NumPyInterpreter().execute(program)
        assert np.all(result.value(out) == 8.0)

    def test_power_program_values(self):
        program, out, memory = power_program(64, 6)
        validate_program(program)
        x = memory.read_view(program[0].input_views[0])
        result = NumPyInterpreter().execute(program, memory)
        assert np.allclose(result.value(out), x ** 6)

    def test_elementwise_chain_length(self):
        program, out = elementwise_chain(32, length=12)
        validate_program(program)
        assert program.num_operations() == 13  # identity + 12 chain ops

    def test_linear_solve_program_solves_the_system(self):
        program, solution, memory = linear_solve_program(24, seed=3)
        validate_program(program)
        matrix = memory.read_view(program[0].input_views[0])
        rhs = memory.read_view(program[1].input_views[1])
        result = NumPyInterpreter().execute(program, memory)
        assert np.allclose(result.value(solution), np.linalg.solve(matrix, rhs))

    def test_linear_solve_reuse_variant_reads_inverse_twice(self):
        program, _, _ = linear_solve_program(8, reuse_inverse=True)
        assert program.count(OpCode.BH_ADD_REDUCE) == 1


class TestApplicationWorkloads:
    def test_heat_equation_matches_numpy_reference(self):
        reset_session(backend="interpreter", optimize=True)
        grid_size, iterations = 16, 4
        result = heat_equation(grid_size=grid_size, iterations=iterations).to_numpy()

        reference = np.zeros((grid_size, grid_size))
        reference[0, :] = 100.0
        reference[-1, :] = 100.0
        for _ in range(iterations):
            updated = reference.copy()
            updated[1:-1, 1:-1] = 0.25 * (
                reference[0:-2, 1:-1]
                + reference[2:, 1:-1]
                + reference[1:-1, 0:-2]
                + reference[1:-1, 2:]
            )
            reference = updated
        assert np.allclose(result, reference)

    def test_heat_equation_same_result_with_and_without_optimizer(self):
        reset_session(backend="interpreter", optimize=False)
        baseline = heat_equation(grid_size=12, iterations=3).to_numpy()
        reset_session(backend="interpreter", optimize=True)
        optimized = heat_equation(grid_size=12, iterations=3).to_numpy()
        assert np.allclose(baseline, optimized)

    def test_black_scholes_prices_match_closed_form(self):
        reset_session(backend="interpreter", optimize=True)
        bh.random.seed(99)
        prices = black_scholes(num_options=2000).to_numpy()
        assert prices.shape == (2000,)
        # call prices are positive and bounded by the spot price range
        assert np.all(prices > 0)
        assert np.all(prices < 120.0)
        # at-the-money-ish options with these parameters average around 10-13
        assert 5.0 < prices.mean() < 20.0

    def test_black_scholes_optimizer_does_not_change_prices(self):
        reset_session(backend="interpreter", optimize=False)
        bh.random.seed(7)
        baseline = black_scholes(num_options=500).to_numpy()
        reset_session(backend="interpreter", optimize=True)
        bh.random.seed(7)
        optimized = black_scholes(num_options=500).to_numpy()
        assert np.allclose(baseline, optimized)

    def test_monte_carlo_pi_converges(self):
        reset_session(backend="interpreter", optimize=True)
        bh.random.seed(123)
        estimate = float(monte_carlo_pi(num_samples=200_000))
        assert abs(estimate - np.pi) < 0.05

    def test_gaussian_blur_preserves_shape_and_range(self):
        reset_session(backend="interpreter", optimize=True)
        bh.random.seed(5)
        blurred = gaussian_blur(height=24, width=32, iterations=2).to_numpy()
        assert blurred.shape == (24, 32)
        assert blurred.min() >= 0.0
        assert blurred.max() <= 1.0

    def test_polynomial_evaluation_uses_both_headline_rewrites(self):
        session = reset_session(backend="interpreter", optimize=True)
        bh.random.seed(3)
        values = polynomial_evaluation(size=256, exponent=10).to_numpy()
        report = session.last_report
        assert report.optimized.count(OpCode.BH_POWER, include_fused=True) == 0
        # the three trailing "+= 1" byte-codes merge into a single "+ 3"
        merged_constants = [
            instr.constant.value
            for instr in report.optimized.flattened()
            if instr.opcode is OpCode.BH_ADD and instr.constant is not None
        ]
        assert 3 in merged_constants
        assert np.all(values >= 3.0)


class TestRandomProgramGenerator:
    def test_generated_programs_are_valid(self):
        for seed in range(10):
            program, synced = random_elementwise_program(seed)
            validate_program(program)
            assert synced

    def test_generation_is_reproducible(self):
        first, _ = random_elementwise_program(42)
        second, _ = random_elementwise_program(42)
        assert first.to_text() == second.to_text()

    def test_different_seeds_differ(self):
        first, _ = random_elementwise_program(1)
        second, _ = random_elementwise_program(2)
        assert first.to_text() != second.to_text()

    def test_generated_programs_execute(self):
        program, synced = random_elementwise_program(7)
        result = NumPyInterpreter().execute(program)
        for view in synced:
            assert np.all(np.isfinite(result.value(view)))

    def test_power_free_generation(self):
        program, _ = random_elementwise_program(11, include_power=False)
        assert program.count(OpCode.BH_POWER) == 0

    def test_optimizer_handles_generated_programs(self):
        for seed in (0, 5, 9):
            program, _ = random_elementwise_program(seed)
            report = optimize(program)
            validate_program(report.optimized)
